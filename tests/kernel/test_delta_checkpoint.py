"""Tests for delta (copy-on-write) checkpoints and restore reuse."""

from repro.kernel.checkpoint import restore, take
from repro.workloads import WorkloadBuilder


def build_system():
    builder = WorkloadBuilder("ckpt-delta", seed=5)
    builder.phase("crc", iters=6000)
    builder.phase("stream", n=512, iters=6)
    builder.phase("branchy", iters=6000)
    return builder.build()


def test_delta_copies_only_dirty_frames():
    system = build_system().boot()
    system.run(30_000)
    parent = take(system)
    assert parent.delta_bytes == parent.memory_bytes  # no parent: full
    system.run(2_000)
    child = take(system, parent=parent)
    # the short run dirtied a small fraction of the frame set
    assert child.memory_bytes == parent.memory_bytes or \
        child.memory_bytes > 0
    assert child.delta_bytes < child.memory_bytes


def test_delta_restore_is_bit_identical_to_full():
    system = build_system().boot()
    system.run(30_000)
    parent = take(system)
    system.run(2_000)
    full = take(system)            # self-contained snapshot
    delta = take(system, parent=parent)
    assert delta.frames == full.frames  # logical view identical

    system.run_to_completion()
    end = system.machine.state.snapshot()
    end_stats = system.machine.stats.snapshot()

    restore(system, delta)
    mid_stats = system.machine.stats.snapshot()
    restore(system, full)
    assert system.machine.stats.snapshot() == mid_stats

    system.run_to_completion()
    assert system.machine.state.snapshot() == end
    assert system.machine.stats.snapshot() == end_stats


def test_chained_deltas_compose():
    system = build_system().boot()
    system.run(20_000)
    first = take(system)
    system.run(4_000)
    second = take(system, parent=first)
    system.run(4_000)
    third = take(system, parent=second)
    system.run_to_completion()
    end = system.machine.state.snapshot()
    output = system.output

    for checkpoint in (third, second, first):
        restore(system, checkpoint)
        system.run_to_completion()
        assert system.machine.state.snapshot() == end
        assert system.output == output


def test_unchanged_frames_share_blob_digests_with_parent():
    system = build_system().boot()
    system.run(30_000)
    parent = take(system)
    system.run(1_000)
    child = take(system, parent=parent)
    shared = sum(1 for pfn, digest in child.frame_hashes.items()
                 if parent.frame_hashes.get(pfn) == digest)
    assert shared > 0
    # every shared digest resolves through the chain without a copy
    for digest in set(child.frame_hashes.values()):
        assert child.resolve_blob(digest) is not None


def test_restore_then_take_is_a_clean_parent():
    """A restored system is the checkpoint's state: a delta against it
    right away must carry (almost) nothing."""
    system = build_system().boot()
    system.run(30_000)
    parent = take(system)
    system.run(10_000)
    restore(system, parent)
    again = take(system, parent=parent)
    assert again.frames == parent.frames
    assert again.delta_bytes <= parent.memory_bytes // 4
