"""Checkpoints of multi-core guests.

The SMP extension of the checkpoint format: one per-hart snapshot
(register file, VM statistics, profile counts, pending IRQs, resident
fast-cache blocks) over the single shared frame image.  Round trips
must be bit-identical per core, delta dedup must keep working against
the shared dirty-frame write generations, and hart-count mismatches
must be rejected loudly.
"""

import pytest

from repro.kernel.checkpoint import restore, take
from repro.workloads import SUITE_MACHINE_KWARGS, build_parallel


def boot_smp_system(n_cores=2, bench="lockcnt"):
    workload = build_parallel(bench, size="tiny")
    return workload.boot(n_cores=n_cores, **SUITE_MACHINE_KWARGS)


def per_core_snapshots(system):
    return [{"cpu": core.state.snapshot(),
             "stats": core.stats.snapshot()}
            for core in system.machine.cores]


def test_checkpoint_records_one_snapshot_per_hart():
    system = boot_smp_system(n_cores=2)
    system.run(3000)
    checkpoint = take(system)
    assert checkpoint.cores is not None and len(checkpoint.cores) == 2
    for core, snap in zip(system.machine.cores, checkpoint.cores):
        assert snap["cpu"] == core.state.snapshot()
    # the top-level fields mirror core 0 (format compatibility)
    assert checkpoint.cpu == checkpoint.cores[0]["cpu"]


def test_round_trip_restores_every_register_file():
    system = boot_smp_system(n_cores=2)
    system.run(3000)
    checkpoint = take(system)
    at_take = per_core_snapshots(system)

    system.run(2000)  # diverge on both harts
    assert per_core_snapshots(system) != at_take
    restore(system, checkpoint)
    assert per_core_snapshots(system) == at_take


def test_rewound_run_is_bit_identical_to_straight_run():
    straight = boot_smp_system(n_cores=2)
    straight.run(3000)
    straight.run_to_completion()

    rewound = boot_smp_system(n_cores=2)
    rewound.run(3000)
    checkpoint = take(rewound)
    rewound.run(2500)           # diverge
    restore(rewound, checkpoint)
    rewound.run_to_completion()

    assert per_core_snapshots(rewound) == per_core_snapshots(straight)


def test_delta_dedup_over_shared_frames():
    """Dirty-frame tracking is shared: a delta child stores only the
    frames *any* hart dirtied since the parent, once each."""
    system = boot_smp_system(n_cores=2)
    system.run(4000)
    parent = take(system)
    assert parent.delta_bytes == parent.memory_bytes  # full snapshot
    system.run(1000)  # both harts touch the shared region
    child = take(system, parent=parent)
    assert child.delta_bytes < child.memory_bytes
    # the logical frame image equals an independent full snapshot
    full = take(system)
    assert child.frames == full.frames


def test_delta_restore_round_trips():
    system = boot_smp_system(n_cores=2)
    system.run(4000)
    parent = take(system)
    system.run(1000)
    delta = take(system, parent=parent)
    at_delta = per_core_snapshots(system)
    system.run_to_completion()
    end = per_core_snapshots(system)

    restore(system, delta)
    assert per_core_snapshots(system) == at_delta
    system.run_to_completion()
    assert per_core_snapshots(system) == end


def test_hart_count_mismatch_is_rejected():
    two = boot_smp_system(n_cores=2)
    two.run(2000)
    checkpoint = take(two)
    four = boot_smp_system(n_cores=4)
    four.run(2000)
    with pytest.raises(ValueError):
        restore(four, checkpoint)
