"""Tests for full-system checkpoint/restore."""

import pytest

from repro.isa import assemble
from repro.kernel import boot
from repro.kernel.checkpoint import take, restore
from repro.workloads import WorkloadBuilder


def build_system():
    builder = WorkloadBuilder("ckpt", seed=9)
    builder.phase("crc", iters=5000)
    builder.phase("stream", n=512, iters=6)
    builder.phase("console_io", nbytes=24)
    builder.phase("disk_io", nsect=2, reps=1)
    builder.phase("branchy", iters=8000)
    return builder.build()


def run_reference():
    system = build_system().boot()
    system.run_to_completion()
    return system


def test_restore_resumes_bit_identically():
    reference = run_reference()

    system = build_system().boot()
    system.run(40_000)
    checkpoint = take(system)
    # diverge: run to the end once
    system.run_to_completion()
    first_end = system.machine.state.snapshot()
    assert first_end == reference.machine.state.snapshot()

    # rewind and replay: must reach the identical end state
    restore(system, checkpoint)
    assert system.machine.state.icount <= 40_000 + 64
    system.run_to_completion()
    assert system.machine.state.snapshot() == first_end
    assert system.output == reference.output
    assert (system.disk._sectors.keys()
            == reference.disk._sectors.keys())


def test_restore_preserves_monitored_statistics():
    system = build_system().boot()
    system.run(40_000)
    saved = system.machine.stats.snapshot()
    checkpoint = take(system)
    system.run_to_completion()
    restore(system, checkpoint)
    assert system.machine.stats.snapshot() == saved


def test_checkpoint_is_independent_of_later_execution():
    system = build_system().boot()
    system.run(30_000)
    checkpoint = take(system)
    memory_before = checkpoint.memory_bytes
    system.run_to_completion()  # mutates guest memory
    assert checkpoint.memory_bytes == memory_before
    restore(system, checkpoint)
    again = take(system)
    assert again.cpu == checkpoint.cpu
    assert again.frames == checkpoint.frames


def test_restore_across_mode_switches():
    from repro.vm import MODE_EVENT, NullSink
    system = build_system().boot()
    system.run(20_000)
    checkpoint = take(system)
    system.run(5_000, mode=MODE_EVENT, sink=NullSink())
    restore(system, checkpoint)
    system.run_to_completion()
    assert system.exit_code == 0


def test_checkpoint_captures_devices():
    system = boot(assemble("""
    _start:
        la t1, msg
        li t2, 3
        li t0, 1
        li t7, 1
        ecall
        halt
    msg:
        .ascii "abc"
    """))
    system.run_to_completion()
    checkpoint = take(system)
    assert checkpoint.console["output"] == b"abc"
