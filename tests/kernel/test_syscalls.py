"""Tests for the kernel layer: syscalls, loader, demand regions."""

import pytest

from repro.isa import assemble
from repro.kernel import Kernel, boot
from repro.vm import MachineError


def run(source):
    system = boot(assemble("_start:\n" + source))
    system.run_to_completion()
    return system


def test_exit_code():
    system = run("li t0, 17\nli t7, 0\necall")
    assert system.exit_code == 17
    assert system.machine.state.halted


def test_console_write():
    system = run("""
        la t1, msg
        li t2, 5
        li t0, 1         ; channel
        li t7, 1         ; SYS_WRITE
        ecall
        mv t3, t0        ; bytes written
        li t7, 0
        li t0, 0
        ecall
    msg:
        .ascii "hello"
    """)
    assert system.output == "hello"
    assert system.machine.state.regs[4] == 5
    assert system.machine.stats.io_operations >= 1


def test_console_read():
    system = boot(assemble("""
    _start:
        li t7, 10        ; SYS_MAP
        li t0, 0x1000
        ecall
        mv t1, t0        ; buffer
        li t0, 1         ; channel
        li t2, 10
        li t7, 2         ; SYS_READ
        ecall
        mv t3, t0        ; bytes read
        lb t4, 0(t1)
        li t7, 0
        li t0, 0
        ecall
    """))
    system.console.feed_input(b"A!")
    system.run_to_completion()
    assert system.machine.state.regs[4] == 2
    assert system.machine.state.regs[5] == ord("A")


def test_brk_grows_heap():
    system = run("""
        li t7, 3
        li t0, 0
        ecall            ; query
        mv t1, t0
        addi t0, t1, 0x3000
        li t7, 3
        ecall            ; grow
        sd t1, 0(t1)     ; demand fault + store
        ld t2, 0(t1)
        li t7, 0
        li t0, 0
        ecall
    """)
    regs = system.machine.state.regs
    assert regs[3] == regs[2]  # loaded back the stored pointer


def test_brk_below_base_fails():
    system = run("""
        li t0, 0x10      ; far below the heap base
        li t7, 3
        ecall
        mv t1, t0
        li t7, 0
        li t0, 0
        ecall
    """)
    assert system.machine.state.regs[2] == (1 << 64) - 1


def test_block_device_syscalls():
    system = boot(assemble("""
    _start:
        li t7, 10
        li t0, 0x1000
        ecall            ; map a buffer
        mv t1, t0
        li t0, 3         ; lba
        li t2, 1         ; nsect
        li t7, 4         ; SYS_BLK_READ
        ecall
        lb t3, 0(t1)     ; first byte of sector 3
        ; write it back to lba 9
        li t0, 9
        li t7, 5         ; SYS_BLK_WRITE
        ecall
        li t7, 0
        li t0, 0
        ecall
    """))
    system.disk.write_sectors(3, b"\x7f" + b"\x00" * 511)
    system.run_to_completion()
    assert system.machine.state.regs[4] == 0x7F
    assert system.disk.read_sectors(9, 1)[0] == 0x7F


def test_nic_syscalls_roundtrip():
    system = run("""
        li t7, 10
        li t0, 0x1000
        ecall               ; map a buffer
        mv t3, t0           ; t3 = buffer
        li t4, 0x676e6970   ; "ping" little-endian
        sw t4, 0(t3)
        mv t0, t3
        li t1, 4
        li t7, 6            ; SYS_NET_SEND(buf, len)
        ecall
        mv t5, t0           ; bytes sent
        mv t0, t3
        li t1, 4
        li t7, 7            ; SYS_NET_RECV(buf, maxlen): loopback echo
        ecall
        mv t6, t0           ; bytes received
        lw t2, 0(t3)
        li t7, 0
        li t0, 0
        ecall
    """)
    regs = system.machine.state.regs
    assert regs[6] == 4          # sent
    assert regs[7] == 4          # received (echo)
    assert regs[3] == 0x676E6970  # payload intact
    assert system.nic.packets_sent == 1


def test_time_syscall_reads_virtual_cycles():
    system = boot(assemble("""
    _start:
        li t7, 8
        ecall
        mv t1, t0
        li t7, 0
        li t0, 0
        ecall
    """))
    system.machine.state.cycles = 4242
    system.run_to_completion()
    assert system.machine.state.regs[2] == 4242


def test_map_unmap_region():
    system = run("""
        li t0, 0x2000
        li t7, 10        ; SYS_MAP
        ecall
        mv t1, t0
        li t2, 77
        sd t2, 0(t1)     ; touch (demand fault)
        ld t3, 0(t1)
        mv t0, t1
        li t1, 0x2000
        li t7, 11        ; SYS_UNMAP
        ecall
        li t7, 0
        li t0, 0
        ecall
    """)
    assert system.machine.state.regs[4] == 77


def test_access_after_unmap_crashes():
    system = boot(assemble("""
    _start:
        li t0, 0x2000
        li t7, 10
        ecall
        mv t1, t0
        sd t1, 0(t1)
        mv t0, t1
        li t1, 0x2000
        li t7, 11
        ecall
        ld t2, 0(t1)     ; wait: t1 now holds the size, not the base
        halt
    """))
    # t1 holds 0x2000 after the unmap setup, which is an unmapped
    # address -> the final load must crash.
    with pytest.raises(MachineError):
        system.run_to_completion()


def test_unknown_syscall_crashes():
    system = boot(assemble("_start:\nli t7, 999\necall\nhalt"))
    with pytest.raises(MachineError):
        system.run_to_completion()


def test_write_to_bad_channel_returns_error():
    system = run("""
        li t0, 9         ; not the console channel
        la t1, msg
        li t2, 3
        li t7, 1
        ecall
        mv t3, t0
        li t7, 0
        li t0, 0
        ecall
    msg:
        .ascii "abc"
    """)
    assert system.machine.state.regs[4] == (1 << 64) - 1


def test_syscall_counts_tracked():
    system = run("""
        li t7, 9
        ecall
        ecall
        li t7, 0
        li t0, 0
        ecall
    """)
    assert system.kernel.syscall_counts[9] == 2
    assert system.kernel.syscall_counts[0] == 1


def test_kernel_region_bookkeeping():
    kernel = Kernel()
    kernel.set_heap(0x10000, 0x1000)
    kernel.add_region(0x50000, 0x2000)
    assert kernel._region_containing(0x10000)
    assert kernel._region_containing(0x10FFF)
    assert kernel._region_containing(0x11000) is None
    assert kernel._region_containing(0x51000)
    assert kernel._region_containing(0x52000) is None
