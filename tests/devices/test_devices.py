"""Unit tests for the device models and the MMIO bus."""

import pytest

from repro.devices import (BlockDevice, Bus, BusError, ConsoleDevice,
                           NicDevice, SECTOR_SIZE, TimerDevice)
from repro.vm import VmStats


# ----------------------------------------------------------------------
# bus

def test_bus_attach_and_route():
    stats = VmStats()
    bus = Bus(stats=stats)
    console = ConsoleDevice()
    bus.attach(console, 0x1000)
    bus.write(0x1000, 1, ord("A"))
    assert console.output == b"A"
    assert stats.io_operations == 1


def test_bus_rejects_overlapping_windows():
    bus = Bus()
    bus.attach(ConsoleDevice(), 0x1000)
    with pytest.raises(BusError):
        bus.attach(BlockDevice(), 0x1800)


def test_bus_unmapped_access():
    bus = Bus()
    with pytest.raises(BusError):
        bus.read(0x9999, 4)
    with pytest.raises(BusError):
        bus.write(0x9999, 4, 1)


def test_bus_counts_reads_and_writes():
    stats = VmStats()
    bus = Bus(stats=stats)
    bus.attach(ConsoleDevice(), 0)
    bus.read(0x8, 8)   # STATUS
    bus.write(0x0, 1, 65)
    bus.count_io(3)
    assert stats.io_operations == 5


# ----------------------------------------------------------------------
# console

def test_console_output_and_input():
    console = ConsoleDevice()
    console.write_bytes(b"hello ")
    console.write_bytes(b"world")
    assert console.output_text() == "hello world"
    console.feed_input(b"xy")
    assert console.read_bytes(10) == b"xy"
    assert console.read_bytes(10) == b""


def test_console_mmio():
    console = ConsoleDevice()
    console.feed_input(b"a")
    assert console.mmio_read(0x08, 8) == 1      # input available
    assert console.mmio_read(0x00, 1) == ord("a")
    assert console.mmio_read(0x08, 8) == 0
    assert console.mmio_read(0x00, 1) == 0      # empty queue
    console.mmio_write(0x00, 1, ord("z"))
    assert console.output == b"z"


# ----------------------------------------------------------------------
# block device

def test_block_sector_roundtrip():
    disk = BlockDevice()
    payload = bytes(range(256)) * 2
    disk.write_sectors(5, payload)
    assert disk.read_sectors(5, 1) == payload
    assert disk.sectors_transferred == 2


def test_block_write_pads_partial_sector():
    disk = BlockDevice()
    disk.write_sectors(0, b"abc")
    sector = disk.read_sectors(0, 1)
    assert sector[:3] == b"abc"
    assert len(sector) == SECTOR_SIZE
    assert sector[3:] == b"\x00" * (SECTOR_SIZE - 3)


def test_block_out_of_range():
    disk = BlockDevice(num_sectors=4)
    with pytest.raises(ValueError):
        disk.read_sectors(4, 1)


def test_block_mmio_load_store():
    disk = BlockDevice()
    disk.write_sectors(7, b"Z" * SECTOR_SIZE)
    disk.mmio_write(0x00, 8, 7)   # LBA
    disk.mmio_write(0x18, 8, 1)   # CMD_LOAD
    disk.mmio_write(0x10, 8, 0)   # BUFFER = 0
    assert disk.mmio_read(0x20, 1) == ord("Z")
    # patch one byte and store back
    disk.mmio_write(0x10, 8, 0)
    disk.mmio_write(0x20, 1, ord("Q"))
    disk.mmio_write(0x18, 8, 2)   # CMD_STORE
    assert disk.read_sectors(7, 1)[0] == ord("Q")


# ----------------------------------------------------------------------
# timer

def test_timer_posts_interrupt_on_deadline():
    class FakeMachine:
        def __init__(self):
            self.irqs = []

        def post_interrupt(self, irq):
            self.irqs.append(irq)

    machine = FakeMachine()
    timer = TimerDevice(machine)
    timer.mmio_write(0x08, 8, 1000)  # DEADLINE
    timer.mmio_write(0x10, 8, 1)     # enable
    timer.advance(500)
    assert machine.irqs == []
    timer.advance(1000)
    assert machine.irqs == [1]
    # one-shot: advancing further does not re-fire
    timer.advance(2000)
    assert machine.irqs == [1]
    assert timer.interrupts_posted == 1


def test_timer_mmio_readback():
    timer = TimerDevice()
    timer.advance(123)
    assert timer.mmio_read(0x00, 8) == 123
    timer.mmio_write(0x08, 8, 55)
    assert timer.mmio_read(0x08, 8) == 55
    assert timer.mmio_read(0x10, 8) == 0


# ----------------------------------------------------------------------
# nic

def test_nic_loopback_echo():
    nic = NicDevice()
    nic.send(b"ping")
    assert nic.mmio_read(0x00, 8) == 1
    assert nic.mmio_read(0x08, 8) == 4
    assert nic.recv(100) == b"ping"
    assert nic.recv(100) == b""
    assert nic.packets_sent == 1
    assert nic.packets_received == 1


def test_nic_custom_peer():
    def peer(packet):
        if packet == b"drop":
            return None
        return packet.upper()

    nic = NicDevice(peer=peer)
    nic.send(b"hello")
    nic.send(b"drop")
    assert nic.recv(100) == b"HELLO"
    assert nic.recv(100) == b""


def test_nic_truncates_oversized_packets():
    nic = NicDevice()
    nic.send(b"x" * 10000)
    assert len(nic.recv(10000)) == 4096
