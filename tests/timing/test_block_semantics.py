"""`describe_block`: per-block semantic metadata for the verifier.

The metadata must agree with the instruction stream it summarises —
in particular `faultable` must be exactly "has a load or a store",
because that is the condition under which the fused emitters generate
a `GuestFault` handler (and the symbolic verifier expects fault
exits).
"""

import pytest

from repro.isa import assemble
from repro.kernel import boot
from repro.timing import OutOfOrderCore, TimingConfig
from repro.timing.codegen import (BlockSemantics, TimedBlockCodegen,
                                  WarmingBlockCodegen)
from repro.timing.warming import FunctionalWarmingSink

PROGRAMS = {
    "alu": "_start:\n    li t0, 1\n    add t1, t0, t0\n    halt\n",
    "load": "_start:\n    li t0, 4096\n    lw t1, 0(t0)\n    halt\n",
    "store": "_start:\n    li t0, 4096\n    sw zero, 0(t0)\n    halt\n",
    "branch": ("_start:\n    li t0, 1\n    beq t0, zero, _start\n"
               "    halt\n"),
    "jump": "_start:\n    jal ra, _next\n_next:\n    halt\n",
}


def _describe(name, codegen_cls, *args):
    system = boot(assemble(PROGRAMS[name]))
    tr = system.machine.translator
    pc = system.machine.state.pc
    instrs = tr._decode_block(pc)
    return codegen_cls(*args).describe_block(pc, instrs), instrs


@pytest.fixture(scope="module")
def timed_codegen_args():
    return (OutOfOrderCore(TimingConfig.small()),)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_metadata_matches_instruction_stream(name, timed_codegen_args):
    sem, instrs = _describe(name, TimedBlockCodegen,
                            *timed_codegen_args)
    assert isinstance(sem, BlockSemantics)
    assert sem.length == len(instrs)
    assert sem.flavor == "timed"
    assert sem.has_load == (name == "load")
    assert sem.has_store == (name == "store")
    assert sem.has_branch == (name == "branch")
    assert sem.has_jump == (name == "jump")
    # the fault-handler condition: exactly loads-or-stores
    assert sem.faultable == (sem.has_load or sem.has_store)


def test_classes_lists_present_classes(timed_codegen_args):
    sem, _ = _describe("load", TimedBlockCodegen, *timed_codegen_args)
    assert "load" in sem.classes
    assert "store" not in sem.classes
    sem, _ = _describe("branch", TimedBlockCodegen,
                       *timed_codegen_args)
    assert "branch" in sem.classes


def test_warming_flavor_and_agreement(timed_codegen_args):
    warm = FunctionalWarmingSink(OutOfOrderCore(TimingConfig.small()))
    sem_w, _ = _describe("store", WarmingBlockCodegen, warm)
    sem_t, _ = _describe("store", TimedBlockCodegen,
                         *timed_codegen_args)
    assert sem_w.flavor == "warm"
    # both flavours describe the same guest semantics
    assert (sem_w.pc0, sem_w.length, sem_w.faultable) == \
        (sem_t.pc0, sem_t.length, sem_t.faultable)


def test_semantics_is_frozen(timed_codegen_args):
    sem, _ = _describe("alu", TimedBlockCodegen, *timed_codegen_args)
    with pytest.raises(Exception):
        sem.faultable = True
