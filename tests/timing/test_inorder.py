"""Tests for the in-order timing model."""

import pytest

from repro.isa import OpClass
from repro.timing import InOrderCore, OutOfOrderCore, TimingConfig
from repro.vm import MODE_EVENT
from repro.workloads import WorkloadBuilder

ALU = int(OpClass.INT_ALU)
LOAD = int(OpClass.LOAD)
BRANCH = int(OpClass.BRANCH)


def test_ipc_bounded_by_one():
    core = InOrderCore()
    for i in range(5000):
        core.on_inst(0x1000 + (i % 16) * 4, ALU, -1, -1, -1, 0, 0, 0)
    assert core.retired / core.cycles <= 1.0


def test_load_miss_costs_memory_latency():
    config = TimingConfig()
    core = InOrderCore(config)
    before = core.cycles
    core.on_inst(0x1000, LOAD, 3, 1, -1, 0x80000, 0, 0)
    assert core.cycles - before >= config.memory_latency


def test_mispredicts_add_penalty():
    config = TimingConfig()

    def run(pattern):
        core = InOrderCore(config)
        for taken in pattern:
            core.on_inst(0x1000, BRANCH, -1, 1, 2, 0,
                         1 if taken else 0, 0x2000 if taken else 0x1004)
        return core.cycles

    import random
    rng = random.Random(3)
    assert run([rng.random() < 0.5 for _ in range(3000)]) \
        > run([False] * 3000) * 1.5


def test_inorder_slower_than_out_of_order_on_ilp_code():
    """On a real workload the OoO core extracts parallelism the
    in-order core cannot."""
    builder = WorkloadBuilder("ilp", seed=2)
    builder.phase("stream", n=1024, iters=10)
    builder.phase("crc", iters=5000)
    workload = builder.build()

    ooo = OutOfOrderCore(TimingConfig.small())
    system = workload.boot()
    system.run_to_completion(mode=MODE_EVENT, sink=ooo)

    inorder = InOrderCore(TimingConfig.small())
    system = workload.boot()
    system.run_to_completion(mode=MODE_EVENT, sink=inorder)

    assert inorder.retired == ooo.retired
    assert inorder.cycles > ooo.cycles


def test_inorder_plugs_into_the_controller():
    """The sampling controller accepts any conforming timing core."""
    from repro.sampling import SimulationController
    builder = WorkloadBuilder("plug", seed=4)
    builder.phase("branchy", iters=6000)
    controller = SimulationController(builder.build())
    controller.core = InOrderCore(TimingConfig.small())
    from repro.timing import FunctionalWarmingSink
    controller.warming_sink = FunctionalWarmingSink(controller.core)
    executed, cycles = controller.run_timed(2000)
    assert executed >= 2000
    assert cycles >= executed  # IPC <= 1


def test_checkpoint_interface():
    core = InOrderCore()
    core.on_inst(0x1000, ALU, -1, -1, -1, 0, 0, 0)
    mark = core.checkpoint()
    for i in range(100):
        core.on_inst(0x1000 + (i % 8) * 4, ALU, -1, -1, -1, 0, 0, 0)
    assert 0 < core.ipc_since(mark) <= 1.0
    assert core.stats()["retired"] == 101
