"""Tests for the out-of-order core timing model."""

import pytest

from repro.isa import OpClass
from repro.timing import OutOfOrderCore, TimingConfig

ALU = int(OpClass.INT_ALU)
LOAD = int(OpClass.LOAD)
STORE = int(OpClass.STORE)
BRANCH = int(OpClass.BRANCH)
DIV = int(OpClass.INT_DIV)
FPADD = int(OpClass.FP_ADD)


def feed_alu(core, count, dst=-1, src=-1, start_pc=0x1000):
    """Independent ALU ops cycling through one I-cache line of PCs."""
    for i in range(count):
        core.on_inst(start_pc + (i % 16) * 4, ALU, dst, src, -1, 0, 0, 0)


def test_ipc_bounded_by_width():
    core = OutOfOrderCore()
    # fully independent ALU ops on one cache line region; long enough to
    # amortize the cold instruction-fetch miss
    feed_alu(core, 30000)
    ipc = core.retired / core.cycles
    assert ipc <= core.config.issue_width + 0.01
    assert ipc > 2.8  # independent ops approach the width


def test_dependent_chain_serializes():
    core = OutOfOrderCore()
    # every op reads the previous result: IPC ~ 1
    for i in range(2000):
        core.on_inst(0x1000 + (i % 8) * 4, ALU, 5, 5, -1, 0, 0, 0)
    ipc = core.retired / core.cycles
    assert 0.8 < ipc <= 1.1


def test_unpipelined_divider_throughput():
    core = OutOfOrderCore()
    config = core.config
    # independent divides: 4 int units, each busy `latency` cycles
    for i in range(1000):
        core.on_inst(0x1000, DIV, -1, -1, -1, 0, 0, 0)
    cycles_per_div = core.cycles / 1000
    expected = config.latencies[DIV] / config.int_units
    assert cycles_per_div == pytest.approx(expected, rel=0.2)


def test_fp_uses_separate_units():
    core = OutOfOrderCore()
    # interleave int and fp: they should overlap, not serialize
    for i in range(1000):
        core.on_inst(0x1000, ALU, -1, -1, -1, 0, 0, 0)
        core.on_inst(0x1004, FPADD, -1, -1, -1, 0, 0, 0)
    ipc = core.retired / core.cycles
    assert ipc > 2.0


def test_load_miss_stalls_dependent():
    config = TimingConfig()
    core = OutOfOrderCore(config)
    core.on_inst(0x1000, ALU, 1, -1, -1, 0, 0, 0)  # establish a baseline
    before = core.last_retire_cycle
    # cold load (miss to memory) then a dependent ALU op
    core.on_inst(0x1004, LOAD, 3, 1, -1, 0x100000, 0, 0)
    core.on_inst(0x1008, ALU, 4, 3, -1, 0, 0, 0)
    stall = core.last_retire_cycle - before
    assert stall >= config.memory_latency


def test_cache_hit_load_is_fast():
    core = OutOfOrderCore()
    core.on_inst(0x1000, LOAD, 3, 1, -1, 0x8000, 0, 0)   # warm the line
    before = core.last_retire_cycle
    core.on_inst(0x1004, LOAD, 5, 1, -1, 0x8000, 0, 0)
    core.on_inst(0x1008, ALU, 6, 5, -1, 0, 0, 0)
    assert core.last_retire_cycle - before < 10


def test_mispredicted_branch_costs_penalty():
    config = TimingConfig()

    def run(pattern):
        core = OutOfOrderCore(config)
        for i, taken in enumerate(pattern):
            core.on_inst(0x1000, BRANCH, -1, 1, 2, 0,
                         1 if taken else 0, 0x2000 if taken else 0x1004)
            core.on_inst(0x2000 if taken else 0x1004, ALU, -1, -1, -1,
                         0, 0, 0)
        return core

    import random
    rng = random.Random(1)
    predictable = run([False] * 2000)
    random_pattern = run([rng.random() < 0.5 for _ in range(2000)])
    # random branches must cost noticeably more cycles
    assert random_pattern.cycles > predictable.cycles * 1.5


def test_window_limits_mlp():
    """A window-full stall: long-latency op plus >192 younger ops."""
    config = TimingConfig()
    core = OutOfOrderCore(config)
    # one cold load (190+ cycles)...
    core.on_inst(0x1000, LOAD, 3, -1, -1, 0x200000, 0, 0)
    # ...and 300 independent single-cycle ops behind it
    feed_alu(core, 300)
    # retirement is in-order: nothing retires before the load returns,
    # so the window (192) forces dispatch stalls for ops beyond it.
    assert core.cycles >= config.memory_latency


def test_in_order_retirement_monotonic():
    core = OutOfOrderCore()
    last = 0
    for i in range(500):
        cls = LOAD if i % 7 == 0 else ALU
        core.on_inst(0x1000 + (i % 16) * 4, cls, i % 8, (i + 1) % 8, -1,
                     (i * 64) % 4096, 0, 0)
        assert core.last_retire_cycle >= last
        last = core.last_retire_cycle


def test_retire_width_bounds_throughput():
    core = OutOfOrderCore()
    feed_alu(core, 3001)
    # 3001 instructions at width 3 need at least 1000 cycles
    assert core.cycles >= 1000


def test_checkpoint_ipc_measurement():
    core = OutOfOrderCore()
    feed_alu(core, 100)
    checkpoint = core.checkpoint()
    feed_alu(core, 900)
    ipc = core.ipc_since(checkpoint)
    assert 0 < ipc <= core.config.issue_width
    assert core.ipc_since(core.checkpoint()) == 0.0


def test_store_buffer_pressure():
    """More in-flight stores than buffer entries still makes progress."""
    core = OutOfOrderCore()
    for i in range(200):
        core.on_inst(0x1000, STORE, -1, 1, 2, (i * 8) % 512, 0, 0)
    assert core.retired == 200
    assert core.cycles > 0


def test_stats_shape():
    core = OutOfOrderCore()
    feed_alu(core, 10)
    stats = core.stats()
    assert stats["retired"] == 10
    assert stats["cycles"] == core.cycles
    assert 0 <= stats["ipc"] <= 3


def test_deterministic():
    def run():
        core = OutOfOrderCore()
        for i in range(1000):
            core.on_inst(0x1000 + (i % 32) * 4,
                         LOAD if i % 5 == 0 else ALU,
                         i % 8, (i + 3) % 8, -1, (i * 24) % 8192,
                         0, 0)
        return core.cycles

    assert run() == run()
