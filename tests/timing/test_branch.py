"""Tests for the branch prediction structures."""

import pytest

from repro.timing import BranchUnit, Btb, GsharePredictor, \
    ReturnAddressStack, TimingConfig


def test_gshare_learns_always_taken():
    predictor = GsharePredictor(1024)
    pc = 0x1000
    for _ in range(8):
        predictor.update(pc, True)
    assert predictor.predict(pc)


def test_gshare_learns_alternating_pattern_via_history():
    predictor = GsharePredictor(1024)
    pc = 0x2000
    # Train on a strict T/N alternation: with global history the two
    # contexts map to different counters and both saturate.
    outcome = True
    for _ in range(64):
        predictor.update(pc, outcome)
        outcome = not outcome
    correct = 0
    for _ in range(32):
        if predictor.predict(pc) == outcome:
            correct += 1
        predictor.update(pc, outcome)
        outcome = not outcome
    assert correct >= 30


def test_gshare_power_of_two():
    with pytest.raises(ValueError):
        GsharePredictor(1000)


def test_btb_miss_then_hit():
    btb = Btb(256)
    assert btb.lookup(0x4000) == -1
    btb.update(0x4000, 0x5000)
    assert btb.lookup(0x4000) == 0x5000


def test_btb_conflict_eviction():
    btb = Btb(4)
    btb.update(0x10, 0xAAA)
    btb.update(0x10 + 4 * 4, 0xBBB)  # same index, different tag
    assert btb.lookup(0x10) == -1
    assert btb.lookup(0x10 + 16) == 0xBBB


def test_ras_push_pop():
    ras = ReturnAddressStack(4)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100
    assert ras.pop() == 0  # empty


def test_ras_overflow_wraps():
    ras = ReturnAddressStack(2)
    ras.push(1)
    ras.push(2)
    ras.push(3)  # overwrites the oldest
    assert ras.pop() == 3
    assert ras.pop() == 2


def test_branch_unit_counts_mispredicts():
    unit = BranchUnit(TimingConfig())
    # First taken branch: direction may be right but the BTB misses.
    assert not unit.predict_branch(0x100, True, 0x200)
    for _ in range(4):
        unit.predict_branch(0x100, True, 0x200)
    assert unit.predict_branch(0x100, True, 0x200)
    assert unit.mispredicts >= 1
    assert unit.branches == 6


def test_branch_unit_call_return_pairing():
    unit = BranchUnit(TimingConfig())
    # call (jal ra, f) then return (jalr zero, ra)
    unit.predict_jump(0x100, 0x500, True, False, 0x104)
    correct = unit.predict_jump(0x508, 0x104, False, True, 0x50C)
    assert correct  # RAS predicted the return address


def test_branch_unit_not_taken_correct_without_btb():
    unit = BranchUnit(TimingConfig())
    # train not-taken
    unit.predict_branch(0x300, False, 0x400)
    unit.predict_branch(0x300, False, 0x400)
    assert unit.predict_branch(0x300, False, 0x400)
