"""Tests for caches, TLBs and the memory hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.timing import (Cache, CacheConfig, MemoryHierarchy, TimingConfig,
                          Tlb, TlbConfig)


def small_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig(size=size, assoc=assoc, line_size=line,
                             hit_latency=1))


def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size=1000, assoc=2, line_size=64, hit_latency=1)
    with pytest.raises(ValueError):
        # 3 sets: not a power of two
        CacheConfig(size=3 * 2 * 64, assoc=2, line_size=64, hit_latency=1)


def test_cold_miss_then_hit():
    cache = small_cache()
    assert not cache.access(0x1000)
    assert cache.access(0x1000)
    assert cache.access(0x103F)  # same 64B line
    assert not cache.access(0x1040)  # next line
    assert cache.hits == 2
    assert cache.misses == 2


def test_lru_within_set():
    cache = small_cache(size=2 * 64, assoc=2, line=64)  # 1 set, 2 ways
    a, b, c = 0x0, 0x1000, 0x2000
    cache.access(a)
    cache.access(b)
    cache.access(a)      # a is MRU
    cache.access(c)      # evicts b (LRU)
    assert cache.access(a)
    assert not cache.access(b)


def test_conflict_misses_in_direct_mapped():
    cache = small_cache(size=4 * 64, assoc=1, line=64)  # 4 sets, 1 way
    stride = 4 * 64  # maps to the same set
    cache.access(0)
    cache.access(stride)
    assert not cache.access(0)  # conflict-evicted


def test_cache_flush():
    cache = small_cache()
    cache.access(0)
    cache.flush()
    assert not cache.access(0)


def test_miss_rate():
    cache = small_cache()
    assert cache.miss_rate == 0.0
    cache.access(0)
    cache.access(0)
    assert cache.miss_rate == pytest.approx(0.5)


def test_tlb_fully_associative():
    tlb = Tlb(TlbConfig(entries=4, assoc=4))
    for vpn in range(4):
        assert not tlb.access(vpn << 12)
    for vpn in range(4):
        assert tlb.access(vpn << 12)
    tlb.access(4 << 12)  # evicts LRU (vpn 0)
    assert not tlb.access(0)


def test_hierarchy_latencies_compose():
    config = TimingConfig()
    hierarchy = MemoryHierarchy(config)
    cold = hierarchy.load_latency(0x10000)
    expected_cold = (config.l2_tlb_latency + config.tlb_walk_latency
                     + config.l2.hit_latency + config.memory_latency)
    assert cold == expected_cold
    warm = hierarchy.load_latency(0x10000)
    assert warm == config.l1d.hit_latency


def test_hierarchy_l2_shared_between_i_and_d():
    hierarchy = MemoryHierarchy(TimingConfig())
    hierarchy.fetch_latency(0x4000)          # fills L2 via the I side
    hierarchy.dtlb.access(0x4000)            # pre-warm the D TLB
    latency = hierarchy.load_latency(0x4000)
    config = hierarchy.config
    # L1D misses but L2 hits (shared, 128B line covers the fetch line)
    assert latency == config.l1d.hit_latency + config.l2.hit_latency \
        or latency == config.l2.hit_latency


def test_hierarchy_stats_keys():
    hierarchy = MemoryHierarchy(TimingConfig())
    hierarchy.load_latency(0)
    stats = hierarchy.stats()
    for key in ("l1i_miss_rate", "l1d_miss_rate", "l2_miss_rate",
                "dtlb_misses"):
        assert key in stats


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
def test_cache_matches_reference_lru_model(addresses):
    """The cache must behave exactly like an ideal LRU set-assoc cache."""
    config = CacheConfig(size=8 * 64, assoc=2, line_size=64, hit_latency=1)
    cache = Cache(config)
    reference = {}  # set index -> list of tags, MRU first
    for addr in addresses:
        line = addr >> 6
        set_index = line & (config.num_sets - 1)
        ways = reference.setdefault(set_index, [])
        expected_hit = line in ways
        if expected_hit:
            ways.remove(line)
        ways.insert(0, line)
        del ways[config.assoc:]
        assert cache.access(addr) == expected_hit


def test_working_set_behaviour():
    """Working sets within capacity hit; larger ones thrash."""
    cache = small_cache(size=4096, assoc=2, line=64)  # 64 lines
    fits = [i * 64 for i in range(32)]
    for addr in fits:
        cache.access(addr)
    cache.hits = cache.misses = 0
    for _ in range(10):
        for addr in fits:
            cache.access(addr)
    assert cache.miss_rate == 0.0

    too_big = [i * 64 for i in range(256)]
    for _ in range(3):
        for addr in too_big:
            cache.access(addr)
    # after the warm round everything misses (LRU thrash)
    cache.hits = cache.misses = 0
    for addr in too_big:
        cache.access(addr)
    assert cache.miss_rate == 1.0
