"""Golden decision-trace test: Algorithm 1 under the tracer.

A fixed synthetic workload (seeded, deterministic) is sampled with a
fixed configuration; the emitted ``sampler.decision`` stream must
reproduce the recorded golden outcome sequence exactly, and every
record must be self-consistent with Algorithm 1's arithmetic.
"""

import pytest

from repro import obs
from repro.sampling import (DynamicSampler, SimulationController,
                            dynamic_config)
from repro.workloads import SUITE_MACHINE_KWARGS, WorkloadBuilder

#: outcome per interval: "." functional, "T" phase trigger, "F" forced
#: by max_func (recorded from the seeded run; deterministic)
GOLDEN_SEQUENCE = (
    ".........F.........F.........F...T.........F.....T.........F.")
GOLDEN_TIMED_INTERVALS = 7
GOLDEN_IPC = 1.475562


def golden_workload():
    builder = WorkloadBuilder("golden", seed=7)
    for index in range(4):
        if index % 2 == 0:
            builder.phase("crc", iters=3000)
        else:
            builder.phase("stream", n=512, iters=8)
        builder.phase("console_io", nbytes=16, reps=2)
    return builder.build()


@pytest.fixture(scope="module")
def traced_run():
    with obs.tracing(obs.RingBufferSink()) as tracer:
        controller = SimulationController(
            golden_workload(), machine_kwargs=SUITE_MACHINE_KWARGS)
        sampler = DynamicSampler(dynamic_config("EXC", 100, "1M", 10))
        result = sampler.run(controller)
    return result, tracer.sink.events


def outcome_char(record):
    if record["forced"]:
        return "F"
    return "T" if record["fired"] else "."


def test_golden_sequence(traced_run):
    result, events = traced_run
    records = obs.decision_timeline(events)
    assert "".join(outcome_char(r) for r in records) == GOLDEN_SEQUENCE
    assert result.timed_intervals == GOLDEN_TIMED_INTERVALS
    assert result.ipc == pytest.approx(GOLDEN_IPC, abs=1e-6)


def test_records_are_algorithm1_consistent(traced_run):
    _, events = traced_run
    records = obs.decision_timeline(events)
    threshold = records[0]["threshold"]
    assert threshold == 1.0  # EXC-100 -> S = 100% = 1.0
    for record in records:
        var = record["variables"]["EXC"]
        previous = var["prev_delta"]
        if previous is None:
            assert var["relative"] is None
            triggered = False
        else:
            expected = abs(var["delta"] - previous) / max(previous, 1)
            assert var["relative"] == pytest.approx(expected)
            triggered = var["relative"] > threshold
        # fired is the trigger OR the max_func forcing, never silent
        assert record["fired"] == (triggered or record["forced"])
        if record["forced"]:
            assert not triggered


def test_single_core_records_carry_core_zero_only(traced_run):
    """Per-core sampling tags every decision with its core id, but a
    1-hart run must emit exactly the historical payload plus
    ``core=0`` — no ``cores`` / ``core_trigger`` keys (byte parity of
    single-core decision timelines with the pre-SMP format)."""
    _, events = traced_run
    records = obs.decision_timeline(events)
    assert records
    for record in records:
        assert record["core"] == 0
        assert "cores" not in record
        assert "core_trigger" not in record


def test_one_decision_per_functional_interval(traced_run):
    _, events = traced_run
    records = obs.decision_timeline(events)
    fast_spans = [span for span in obs.mode_spans(events)
                  if span["mode"] == "fast"]
    assert len(records) == len(fast_spans)
    # intervals are ordinal and icount strictly increases
    assert [r["interval"] for r in records] == \
        list(range(1, len(records) + 1))
    icounts = [r["icount"] for r in records]
    assert icounts == sorted(icounts)


def test_timed_spans_follow_fired_decisions(traced_run):
    _, events = traced_run
    records = obs.decision_timeline(events)
    fired = sum(1 for r in records if r["fired"])
    timed = [s for s in obs.mode_spans(events) if s["mode"] == "timed"]
    warming = [s for s in obs.mode_spans(events)
               if s["mode"] == "warming"]
    assert len(timed) == fired
    assert len(warming) == fired


def test_decision_lines_render(traced_run):
    _, events = traced_run
    decisions = [e for e in events if e.type == obs.EV_DECISION]
    lines = [obs.format_decision_line(e, label="golden")
             for e in decisions]
    assert all(line.startswith("[golden]") for line in lines)
    assert any("-> TIMED (trigger)" in line for line in lines)
    assert any("-> TIMED (max_func)" in line for line in lines)
    assert any("-> functional" in line for line in lines)


def test_timeline_survives_jsonl_round_trip(tmp_path, traced_run):
    _, events = traced_run
    path = tmp_path / "events.jsonl"
    obs.write_jsonl(events, path)
    reloaded = obs.read_jsonl(path)
    assert obs.decision_timeline(reloaded) == \
        obs.decision_timeline(events)


def test_analysis_consumes_timeline(traced_run):
    from repro.analysis import decision_series, trigger_rate
    _, events = traced_run
    records = obs.decision_timeline(events)
    series = decision_series(records, "EXC")
    assert len(series["delta"]) == len(records)
    assert len(series["relative"]) == len(records)
    fired = sum(1 for r in records if r["fired"])
    assert sum(series["fired"]) == fired
    assert trigger_rate(records) == pytest.approx(fired / len(records))
