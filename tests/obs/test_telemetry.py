"""Run-telemetry plumbing: heartbeats, lifecycle events, readers, and
the staleness detector that separates slow jobs from dead workers."""

import json

from repro.obs import telemetry


def _mk_clock(start=1000.0):
    """Deterministic fake wall clock (advances 1 s per call)."""
    state = {"now": start}

    def clock():
        state["now"] += 1.0
        return state["now"]

    return clock


# ----------------------------------------------------------------------
# heartbeats


def test_heartbeat_writes_atomic_snapshots(tmp_path):
    writer = telemetry.HeartbeatWriter(tmp_path, "gzip:full:tiny",
                                       clock=_mk_clock())
    writer.beat()
    writer.beat()
    payload = json.loads(writer.path.read_text())
    assert payload["job_id"] == "gzip:full:tiny"
    assert payload["seq"] == 2
    assert payload["status"] == "running"
    assert payload["ts"] > payload["started_at"]
    assert "metrics" in payload
    assert not list(writer.path.parent.glob("*.tmp"))  # renamed away


def test_heartbeat_filename_is_sanitized(tmp_path):
    writer = telemetry.HeartbeatWriter(tmp_path, "a/b:c d")
    assert writer.path.name == "a_b_c_d.json"


def test_heartbeat_context_manager_reports_terminal_status(tmp_path):
    with telemetry.HeartbeatWriter(tmp_path, "ok-job",
                                   interval=60.0) as writer:
        pass
    assert json.loads(writer.path.read_text())["status"] == "done"

    try:
        with telemetry.HeartbeatWriter(tmp_path, "bad-job",
                                       interval=60.0) as writer:
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert json.loads(writer.path.read_text())["status"] == "failed"


def test_heartbeat_thread_beats_periodically(tmp_path):
    import time
    writer = telemetry.HeartbeatWriter(tmp_path, "ticking",
                                       interval=0.02).start()
    deadline = time.time() + 5.0
    try:
        while time.time() < deadline:
            beat = telemetry.read_heartbeats(tmp_path).get("ticking")
            if beat and beat["seq"] >= 3:
                break
            time.sleep(0.01)
    finally:
        writer.stop()
    assert telemetry.read_heartbeats(tmp_path)["ticking"]["seq"] >= 3


# ----------------------------------------------------------------------
# run directory, events, report


def test_run_telemetry_round_trip(tmp_path):
    run = telemetry.RunTelemetry(root=tmp_path, run_id="run-test")
    run.write_manifest(["b", "a"], backend="serial", parallel_jobs=1)
    run.emit("queued", "a")
    run.emit("started", "a", attempt=1)
    run.emit("done", "a", attempt=1, wall_seconds=1.5)
    run.write_report({"schema": 1, "jobs_total": 1})

    assert run.run_dir == tmp_path / "run-test"
    manifest = telemetry.read_manifest(run.run_dir)
    assert manifest["jobs"] == ["a", "b"]  # sorted
    events = telemetry.read_events(run.run_dir)
    assert [event["kind"] for event in events] == ["queued", "started",
                                                   "done"]
    assert [event["seq"] for event in events] == [1, 2, 3]
    assert telemetry.read_report(run.run_dir)["jobs_total"] == 1


def test_read_events_tolerates_torn_tail(tmp_path):
    run = telemetry.RunTelemetry(root=tmp_path, run_id="torn")
    run.emit("queued", "a")
    with open(run.run_dir / telemetry.EVENTS_NAME, "a") as fh:
        fh.write('{"kind": "started", "job": "a", "ts"')  # torn write
    events = telemetry.read_events(run.run_dir)
    assert [event["kind"] for event in events] == ["queued"]


def test_find_latest_run_picks_newest_manifest(tmp_path):
    old = telemetry.RunTelemetry(root=tmp_path, run_id="run-old")
    old.write_manifest([], backend="serial", parallel_jobs=1)
    new = telemetry.RunTelemetry(root=tmp_path, run_id="run-new")
    new.write_manifest([], backend="serial", parallel_jobs=1)
    # make the ordering explicit rather than racing the clock
    manifest = telemetry.read_manifest(old.run_dir)
    manifest["created_at"] -= 100.0
    (old.run_dir / telemetry.MANIFEST_NAME).write_text(
        json.dumps(manifest))
    (tmp_path / "not-a-run").mkdir()
    assert telemetry.find_latest_run(tmp_path) == new.run_dir
    assert telemetry.find_latest_run(tmp_path / "missing") is None


# ----------------------------------------------------------------------
# status rows


def _seed_run(tmp_path, run_id="run-status"):
    run = telemetry.RunTelemetry(root=tmp_path, run_id=run_id)
    run.write_manifest(["a", "b", "c"], backend="process",
                       parallel_jobs=2)
    return run


def test_job_status_rows_merge_lifecycle_and_heartbeats(tmp_path):
    run = _seed_run(tmp_path)
    now = telemetry.wall_now()
    run.emit("queued", "a")
    run.emit("started", "a", attempt=1)
    run.emit("done", "a", attempt=1, wall_seconds=2.5)
    run.emit("queued", "b")
    run.emit("started", "b", attempt=1)
    telemetry.HeartbeatWriter(run.run_dir, "b").beat()
    run.emit("queued", "c")

    rows = {row["job"]: row for row in
            telemetry.job_status_rows(run.run_dir, now=now + 1.0)}
    assert rows["a"]["state"] == "done"
    assert rows["a"]["wall_seconds"] == 2.5
    assert rows["a"]["queue_wait"] >= 0.0
    assert rows["b"]["state"] == "running"
    assert rows["b"]["beats"] == 1
    assert rows["c"]["state"] == "queued"


def test_killed_worker_flagged_stalled(tmp_path):
    """A job whose lifecycle says running but whose heartbeat went
    quiet (worker killed mid-run) is flagged stalled."""
    run = _seed_run(tmp_path, "run-stall")
    run.emit("queued", "a")
    run.emit("started", "a", attempt=1)
    writer = telemetry.HeartbeatWriter(run.run_dir, "a",
                                       clock=_mk_clock(1000.0))
    writer.beat()  # heartbeat stamped ~t=1001, then silence

    (row,) = telemetry.job_status_rows(run.run_dir, now=1031.0,
                                       stale_after=10.0)
    assert row["state"] == "stalled"
    # a fresher view of the same beat is just "running"
    (row,) = telemetry.job_status_rows(run.run_dir, now=1002.0,
                                       stale_after=10.0)
    assert row["state"] == "running"


def test_started_job_without_any_heartbeat_goes_stalled(tmp_path):
    run = _seed_run(tmp_path, "run-nobeat")
    run.emit("started", "a", attempt=1)
    started_ts = telemetry.read_events(run.run_dir)[0]["ts"]
    (row,) = telemetry.job_status_rows(run.run_dir,
                                       now=started_ts + 60.0,
                                       stale_after=10.0)
    assert row["state"] == "stalled"


def test_retrying_state_and_attempt_from_events(tmp_path):
    run = _seed_run(tmp_path, "run-retry")
    run.emit("queued", "a")
    run.emit("started", "a", attempt=1)
    run.emit("retrying", "a", attempt=2)
    ts = telemetry.read_events(run.run_dir)[-1]["ts"]
    (row,) = telemetry.job_status_rows(run.run_dir, now=ts + 1.0)
    assert row["state"] == "retrying"
    assert row["attempt"] == 2


def test_format_status_table_counts_in_flight_and_stalled(tmp_path):
    run = _seed_run(tmp_path, "run-table")
    run.emit("queued", "a")
    run.emit("started", "a", attempt=1)
    run.emit("queued", "b")
    ts = telemetry.read_events(run.run_dir)[-1]["ts"]
    rows = telemetry.job_status_rows(run.run_dir, now=ts + 60.0,
                                     stale_after=10.0)
    table = telemetry.format_status_table(rows)
    assert "2 job(s), 2 in flight, 1 stalled" in table
    assert "stalled" in table.splitlines()[1]  # job a's row
