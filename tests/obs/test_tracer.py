"""Tracer stamping, the global install slot, and the null tracer."""

from repro.obs import (NULL_TRACER, RingBufferSink, Tracer,
                       current_tracer, install_tracer, tracing,
                       uninstall_tracer)


def test_tracer_stamps_monotonic_time_and_icount():
    ticks = iter([10.0, 10.5, 11.25])
    sink = RingBufferSink()
    tracer = Tracer(sink, clock=lambda: next(ticks))
    first = tracer.emit("mark", icount=100, note="a")
    second = tracer.emit("mark", icount=200, note="b")
    assert first.ts == 0.5 and second.ts == 1.25  # relative to epoch
    assert [event.icount for event in sink.events] == [100, 200]
    assert sink.events[0].payload == {"note": "a"}
    assert tracer.emitted == 2


def test_null_tracer_is_disabled_and_silent():
    assert not NULL_TRACER.enabled
    event = NULL_TRACER.emit("mark", icount=1, x=2)
    assert event.type == "mark"  # still returns a record, writes nowhere
    NULL_TRACER.flush()
    NULL_TRACER.close()


def test_install_and_uninstall():
    assert current_tracer() is NULL_TRACER
    tracer = Tracer(RingBufferSink())
    previous = install_tracer(tracer)
    try:
        assert previous is NULL_TRACER
        assert current_tracer() is tracer
    finally:
        uninstall_tracer()
    assert current_tracer() is NULL_TRACER


def test_tracing_context_manager_restores_previous():
    with tracing() as outer:
        assert current_tracer() is outer
        with tracing(RingBufferSink()) as inner:
            assert current_tracer() is inner
            inner.emit("mark", icount=1)
        assert current_tracer() is outer
        assert len(inner.sink.events) == 1
    assert current_tracer() is NULL_TRACER


def test_controller_picks_up_installed_tracer():
    from repro.sampling import SimulationController
    from repro.workloads import SUITE_MACHINE_KWARGS, WorkloadBuilder

    builder = WorkloadBuilder("tracer-demo", seed=1)
    builder.phase("crc", iters=1000)
    with tracing(RingBufferSink()) as tracer:
        controller = SimulationController(
            builder.build(), machine_kwargs=SUITE_MACHINE_KWARGS)
        controller.run_fast(500)
    types = {event.type for event in tracer.sink.events}
    assert "mode" in types and "vmstats" in types
