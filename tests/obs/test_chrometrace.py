"""Chrome-trace export schema."""

import json

import pytest

from repro.obs import (EV_DECISION, EV_MODE, EV_VMSTATS, EV_WARMSTATE,
                       TraceEvent, export_chrome_trace, to_chrome_trace)


def sample_events():
    return [
        TraceEvent(EV_MODE, ts=0.010, icount=1000, payload={
            "mode": "fast", "instructions": 1000, "wall": 0.010,
            "icount_start": 0}),
        TraceEvent(EV_DECISION, ts=0.011, icount=1000, payload={
            "interval": 1, "threshold": 3.0, "fired": True,
            "forced": False, "num_func": 1,
            "variables": {"CPU": {"count": 5, "delta": 5,
                                  "prev_delta": 1, "relative": 4.0}}}),
        TraceEvent(EV_VMSTATS, ts=0.012, icount=1000, payload={
            "code_cache_invalidations": 5, "exceptions": 2,
            "io_operations": 7, "instructions_fast": 1000,
            "instructions_event": 0, "exception_kinds": {"syscall": 2}}),
        TraceEvent(EV_WARMSTATE, ts=0.020, icount=2000, payload={
            "cycles": 3000, "ipc": 0.66, "l1d_miss_rate": 0.01,
            "branches": 100, "mispredicts": 4}),
        TraceEvent("mark", ts=0.021, icount=2000, payload={"note": "x"}),
    ]


def test_schema_top_level():
    trace = to_chrome_trace(sample_events())
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    assert isinstance(trace["traceEvents"], list)
    for record in trace["traceEvents"]:
        assert "ph" in record and "pid" in record and "name" in record


def test_mode_span_is_backdated_complete_event():
    trace = to_chrome_trace(sample_events())
    spans = [r for r in trace["traceEvents"] if r["ph"] == "X"]
    assert len(spans) == 1
    span = spans[0]
    assert span["name"] == "fast"
    assert span["dur"] == pytest.approx(10_000)  # 0.010 s in µs
    assert span["ts"] == pytest.approx(0.0)      # back-dated to t=0
    assert span["args"]["instructions"] == 1000
    assert span["args"]["icount_end"] == 1000


def test_decision_instant_named_by_outcome():
    trace = to_chrome_trace(sample_events())
    instants = [r for r in trace["traceEvents"]
                if r.get("cat") == "decision"]
    assert len(instants) == 1
    assert instants[0]["name"] == "TIMED"
    assert instants[0]["ph"] == "i"
    assert instants[0]["args"]["variables"]["CPU"]["relative"] == 4.0


def test_vmstats_become_counter_tracks():
    trace = to_chrome_trace(sample_events())
    counters = [r for r in trace["traceEvents"] if r["ph"] == "C"]
    names = {record["name"] for record in counters}
    assert "monitored (CPU/EXC/IO)" in names
    monitored = next(r for r in counters
                     if r["name"] == "monitored (CPU/EXC/IO)")
    assert monitored["args"] == {"CPU": 5, "EXC": 2, "IO": 7}


def test_metadata_and_misc_tracks():
    trace = to_chrome_trace(sample_events())
    meta = [r for r in trace["traceEvents"] if r["ph"] == "M"]
    assert any(r["name"] == "process_name" for r in meta)
    misc = [r for r in trace["traceEvents"] if r.get("cat") == "misc"]
    assert misc and misc[0]["name"] == "mark"


def test_export_writes_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    count = export_chrome_trace(sample_events(), path)
    loaded = json.loads(path.read_text())
    assert len(loaded["traceEvents"]) == count
