"""Sink behaviour: ring-buffer eviction, JSONL round-trip, fan-out."""

import json

import pytest

from repro.obs import (CallbackSink, JsonlFileSink, NullSink,
                       RingBufferSink, TeeSink, TraceEvent, read_jsonl,
                       write_jsonl)


def make_events(n):
    return [TraceEvent(type="mark", ts=float(i) / 10, icount=i * 100,
                       payload={"index": i}) for i in range(n)]


def test_ring_buffer_keeps_newest():
    sink = RingBufferSink(capacity=5)
    for event in make_events(12):
        sink.write(event)
    assert sink.written == 12
    assert sink.evicted == 7
    kept = sink.events
    assert len(kept) == 5
    assert [event.payload["index"] for event in kept] == [7, 8, 9, 10, 11]


def test_ring_buffer_clear_and_validation():
    sink = RingBufferSink(capacity=3)
    for event in make_events(2):
        sink.write(event)
    sink.clear()
    assert sink.events == []
    assert sink.written == 0
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    events = make_events(4)
    write_jsonl(events, path)
    loaded = read_jsonl(path)
    assert loaded == events
    # every line is a standalone JSON object with the full schema
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert set(record) == {"type", "ts", "icount", "payload"}


def test_jsonl_sink_streams(tmp_path):
    path = tmp_path / "stream.jsonl"
    sink = JsonlFileSink(path)
    for event in make_events(3):
        sink.write(event)
    sink.close()
    assert len(read_jsonl(path)) == 3


def test_null_and_callback_and_tee():
    seen = []
    null = NullSink()
    callback = CallbackSink(seen.append, event_type="mark")
    tee = TeeSink(null, callback)
    events = make_events(3)
    other = TraceEvent(type="mode", ts=0.0, icount=0, payload={})
    for event in [*events, other]:
        tee.write(event)
    assert seen == events  # the type filter dropped the "mode" event
    tee.flush()
    tee.close()
