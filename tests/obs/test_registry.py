"""Metrics-registry semantics: counters, gauges, histograms, the flag."""

import pytest

from repro.obs import (Counter, Gauge, Histogram, MetricsRegistry,
                       disable_metrics, enable_metrics, get_registry,
                       metrics_enabled, reset_metrics)


@pytest.fixture(autouse=True)
def metrics_off():
    """Leave the process-wide flag the way we found it (off)."""
    yield
    disable_metrics()
    reset_metrics()


# ----------------------------------------------------------------------
# instruments

def test_counter_monotonic():
    counter = Counter("c")
    counter.inc()
    counter.add(41)
    assert counter.value == 42
    with pytest.raises(ValueError):
        counter.add(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value == 7


def test_histogram_bucket_semantics():
    histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 1.0, 5.0, 10.0, 99.0, 1000.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    # le semantics: a value equal to a bound lands in that bucket
    assert snap["buckets"]["1.0"] == 2      # 0.5, 1.0
    assert snap["buckets"]["10.0"] == 2     # 5.0, 10.0
    assert snap["buckets"]["100.0"] == 1    # 99.0
    assert snap["overflow"] == 1            # 1000.0
    assert snap["count"] == 6
    assert snap["min"] == 0.5
    assert snap["max"] == 1000.0
    assert histogram.mean == pytest.approx(sum(
        (0.5, 1.0, 5.0, 10.0, 99.0, 1000.0)) / 6)


def test_histogram_rejects_empty_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())


# ----------------------------------------------------------------------
# registry

def test_registry_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("y") is registry.gauge("y")
    assert registry.histogram("z") is registry.histogram("z")
    assert registry.names() == ["x", "y", "z"]


def test_registry_collect():
    registry = MetricsRegistry()
    registry.counter("c").add(3)
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(0.2)
    collected = registry.collect()
    assert collected["c"] == 3
    assert collected["g"] == 1.5
    assert collected["h"]["count"] == 1


# ----------------------------------------------------------------------
# the module-level switch

def test_disabled_registry_is_noop():
    disable_metrics()
    assert not metrics_enabled()
    registry = get_registry()
    counter = registry.counter("anything")
    counter.inc()
    counter.add(100)
    registry.histogram("h").observe(5.0)
    assert registry.collect() == {}


def test_enabled_registry_records():
    registry = enable_metrics()
    assert metrics_enabled()
    assert get_registry() is registry
    registry.counter("hits").inc()
    assert registry.collect()["hits"] == 1
    disable_metrics()
    # the values survive disabling; only new lookups become no-ops
    assert registry.collect()["hits"] == 1
    assert get_registry() is not registry


def test_sampler_metrics_flow(tmp_path):
    """An instrumented run records decision counts when enabled."""
    from repro.sampling import (DynamicSampler, SimulationController,
                                dynamic_config)
    from repro.workloads import SUITE_MACHINE_KWARGS, WorkloadBuilder

    registry = enable_metrics()
    builder = WorkloadBuilder("metrics-demo", seed=5)
    builder.phase("crc", iters=2000)
    builder.phase("console_io", nbytes=16, reps=2)
    builder.phase("stream", n=256, iters=8)
    controller = SimulationController(
        builder.build(), machine_kwargs=SUITE_MACHINE_KWARGS)
    DynamicSampler(dynamic_config("CPU", 300, "1M", 5)).run(controller)
    collected = registry.collect()
    assert collected["sampler.decisions"] > 0
    assert collected["controller.instructions.fast"] > 0
    assert collected["controller.mode_switches"] >= 1
