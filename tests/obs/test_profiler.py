"""Hot-block profiler: attribution, tier promotion, exports, and the
zero-overhead-when-disabled contract at the translator seam."""

import pytest

from repro.obs import (EV_PROFILE, disable_profiling, enable_profiling,
                       export_chrome_trace, get_profiler,
                       profiling_enabled, reset_profiler)
from repro.obs.profiler import BlockProfiler


@pytest.fixture(autouse=True)
def _clean_profiler():
    disable_profiling()
    reset_profiler()
    yield
    disable_profiling()
    reset_profiler()


def _block(executed=7):
    def fn(state, budget):
        return executed
    return fn


def test_wrap_block_counts_dispatches_and_instructions():
    profiler = BlockProfiler()
    wrapped = profiler.wrap_block(_block(7), pc=0x1000, tier="fast")
    assert wrapped(None, 100) == 7
    assert wrapped(None, 100) == 7
    (rec,) = profiler.records()
    assert (rec.pc, rec.tier) == (0x1000, "fast")
    assert rec.dispatches == 2
    assert rec.instructions == 14
    assert rec.self_seconds >= 0.0


def test_faulting_dispatch_charges_time_but_not_instructions():
    profiler = BlockProfiler()

    def faulting(state, budget):
        raise ValueError("guest fault")

    wrapped = profiler.wrap_block(faulting, pc=0x2000, tier="event")
    with pytest.raises(ValueError):
        wrapped(None, 100)
    (rec,) = profiler.records()
    assert rec.dispatches == 1
    assert rec.instructions == 0  # retired count unknown on a fault


def test_translation_attribution_accumulates():
    profiler = BlockProfiler()
    profiler.record_translation(0x1000, "fast", 0.5, source_lines=12)
    profiler.record_translation(0x1000, "fast", 0.25, source_lines=9)
    (rec,) = profiler.records()
    assert rec.translations == 2
    assert rec.translate_seconds == pytest.approx(0.75)
    assert rec.source_lines == 12  # max, not sum


def test_top_blocks_ranked_by_self_time_with_stable_ties():
    profiler = BlockProfiler()
    profiler.record(0x30, "fast").self_seconds = 1.0
    profiler.record(0x10, "fast").self_seconds = 3.0
    profiler.record(0x20, "event").self_seconds = 1.0
    assert [(r.pc, r.tier) for r in profiler.top_blocks()] == [
        (0x10, "fast"), (0x20, "event"), (0x30, "fast")]
    assert [(r.pc, r.tier) for r in profiler.top_blocks(1)] == [
        (0x10, "fast")]


def test_promoted_pcs_require_plain_and_fused_tiers():
    profiler = BlockProfiler()
    profiler.record(0x10, "event")          # plain only
    profiler.record(0x20, "event")          # promoted
    profiler.record(0x20, "fused-timed")
    profiler.record(0x30, "fused-warm")     # fused only (warm start)
    assert profiler.promoted_pcs() == [0x20]
    assert profiler.summary()["promoted_blocks"] == 1


def test_collapsed_stacks_format_and_zero_skipping():
    profiler = BlockProfiler()
    profiler.record(0x10, "fast").self_seconds = 0.0015
    profiler.record(0x20, "fused-timed")  # zero time: dropped
    assert profiler.collapsed_stacks() == [
        "repro;fast;block_0x10 1500"]


def test_trace_events_lay_spans_back_to_back():
    profiler = BlockProfiler()
    hot = profiler.record(0x10, "fast")
    hot.self_seconds, hot.dispatches, hot.instructions = 0.2, 4, 40
    cold = profiler.record(0x20, "event")
    cold.self_seconds, cold.dispatches = 0.1, 1
    events = profiler.trace_events()
    assert [event.type for event in events] == [EV_PROFILE] * 2
    assert events[0].ts == 0.0
    assert events[1].ts == pytest.approx(0.2)  # hottest first
    assert events[0].payload["pc"] == "0x10"
    assert events[0].payload["seconds"] == pytest.approx(0.2)


def test_chrome_trace_export_renders_profile_spans(tmp_path):
    import json
    profiler = BlockProfiler()
    rec = profiler.record(0x10, "fused-warm")
    rec.self_seconds, rec.dispatches = 0.25, 9
    out = tmp_path / "trace.json"
    export_chrome_trace(profiler.trace_events(), out)
    records = json.loads(out.read_text())["traceEvents"]
    spans = [r for r in records if r.get("ph") == "X"
             and "0x10" in r.get("name", "")]
    assert spans, "no complete span for the profiled block"
    assert spans[0]["dur"] == pytest.approx(0.25e6)
    assert spans[0]["args"]["dispatches"] == 9


def test_format_table_lists_hot_blocks():
    profiler = BlockProfiler()
    rec = profiler.record(0xABC, "fused-timed")
    rec.self_seconds, rec.dispatches, rec.instructions = 0.5, 3, 30
    table = profiler.format_table()
    assert "0xabc" in table
    assert "fused-timed" in table
    assert "1 block records" in table


def test_module_switch_round_trip():
    assert not profiling_enabled()
    profiler = enable_profiling()
    assert profiling_enabled()
    assert profiler is get_profiler()
    disable_profiling()
    assert not profiling_enabled()


# ----------------------------------------------------------------------
# translator integration


def _boot_tiny():
    from repro.isa import assemble
    from repro.kernel import boot
    return boot(assemble(
        "_start:\n    li t0, 5\n    li t1, 6\n    add t2, t0, t1\n"
        "    li t7, 0\n    li t0, 0\n    ecall\n"))


def test_translator_attributes_real_execution():
    profiler = enable_profiling()
    profiler.reset()
    try:
        system = _boot_tiny()
        system.run_to_completion()
    finally:
        disable_profiling()
    records = profiler.records()
    assert records, "no blocks attributed"
    assert profiler.total_dispatches() >= len(records)
    assert all(rec.translations >= 1 for rec in records)
    tiers = {rec.tier for rec in records}
    assert tiers <= {"fast", "event", "fused-timed", "fused-warm"}


def test_disabled_translator_returns_unwrapped_blocks():
    from repro.vm.translator import FLAVOR_FAST
    system = _boot_tiny()
    machine = system.machine
    block = machine.translator.translate(machine.state.pc, FLAVOR_FAST)
    assert block.fn.__name__ == "_block"
    assert get_profiler().records() == []
