"""Unit tests for the hot-path benchmark harness and its CI gate."""

import pytest

from repro.harness import hotpath


def payload(speedup, overall=None):
    cell = {"fast": {"ips": 1000.0 * speedup, "seconds": 1.0,
                     "instructions": 1000 * speedup},
            "slow": {"ips": 1000.0, "seconds": 1.0,
                     "instructions": 1000},
            "speedup": speedup}
    return {
        "schema_version": hotpath.SCHEMA_VERSION,
        "modes": list(hotpath.MODES),
        "sizes": {"tiny": {
            "windows": {"warm": 10, "measure": 20},
            "benchmarks": {"gzip": {mode: dict(cell)
                                    for mode in hotpath.MODES}},
            "summary": {
                **{mode: {"fast_ips_geomean": 1000.0 * speedup,
                          "slow_ips_geomean": 1000.0,
                          "speedup_geomean": speedup}
                   for mode in hotpath.MODES},
                "overall_speedup_geomean": overall or speedup,
            },
        }},
    }


def test_geomean():
    assert hotpath.geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert hotpath.geomean([]) == 0.0
    assert hotpath.geomean([0.0, 4.0]) == pytest.approx(4.0)


def test_gate_passes_within_tolerance():
    baseline = payload(4.0)
    current = payload(3.2)  # 20% down, tolerance 25%
    assert hotpath.compare_to_baseline(current, baseline) == []


def test_gate_fails_on_cell_regression():
    baseline = payload(4.0)
    current = payload(2.5)  # 37.5% down
    problems = hotpath.compare_to_baseline(current, baseline)
    assert problems
    assert any("tiny/gzip" in problem for problem in problems)
    assert any("overall" in problem for problem in problems)


def test_gate_flags_missing_benchmark():
    baseline = payload(4.0)
    current = payload(4.0)
    del current["sizes"]["tiny"]["benchmarks"]["gzip"]
    problems = hotpath.compare_to_baseline(current, baseline)
    assert any("missing" in problem for problem in problems)


def test_gate_ignores_extra_sizes_in_current():
    # a tiny-only CI run must gate against the baseline's tiny section
    # even when the committed baseline also carries the small suite
    baseline = payload(4.0)
    baseline["sizes"]["small"] = baseline["sizes"]["tiny"]
    current = payload(4.0)
    assert hotpath.compare_to_baseline(current, baseline) == []


def test_format_table_mentions_every_cell():
    text = hotpath.format_table(payload(4.0))
    assert "gzip" in text
    for mode in hotpath.MODES:
        assert mode in text
    assert "overall speedup geomean" in text


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    hotpath.write_baseline(payload(4.0), str(path))
    assert hotpath.load_baseline(str(path)) == payload(4.0)
