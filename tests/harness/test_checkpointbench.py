"""Unit tests for the checkpoint benchmark harness and its CI gate."""

import pytest

from repro.harness import checkpointbench as cb


def cell(speedup, delta_ratio=0.02):
    return {
        "cold_seconds": speedup, "warm_seconds": 1.0,
        "speedup": speedup, "ipc": 1.0, "ipc_equal": True,
        "warm_restores": 10, "warm_profile_cache_hits": 1,
        "delta_bytes": int(4096 * delta_ratio * 100),
        "full_bytes": 4096 * 100, "delta_ratio": delta_ratio,
    }


def payload(ckpt_speedup, plain_speedup=2.0, delta_ratio=0.02,
            benchmarks=("mcf", "swim")):
    rows = {bench: {"simpoint": cell(plain_speedup),
                    "simpoint-ckpt": cell(ckpt_speedup, delta_ratio)}
            for bench in benchmarks}
    return {
        "schema_version": cb.SCHEMA_VERSION,
        "size": "paper",
        "policies": ["simpoint", "simpoint-ckpt"],
        "accel_policy": cb.ACCEL_POLICY,
        "benchmarks": rows,
        "summary": {
            "speedup_geomean": ckpt_speedup,
            "simpoint_speedup_geomean": plain_speedup,
            "simpoint-ckpt_speedup_geomean": ckpt_speedup,
            "overall_speedup_geomean": cb.geomean(
                [ckpt_speedup, plain_speedup]),
            "delta_ratio_max": delta_ratio,
            "ipc_equal": True,
        },
    }


def test_geomean():
    assert cb.geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert cb.geomean([]) == 0.0
    assert cb.geomean([0.0, 4.0]) == pytest.approx(4.0)


def test_gate_passes_within_tolerance():
    baseline = payload(4.0)
    current = payload(3.3)  # above floor, < 25% below baseline
    assert cb.compare_to_baseline(current, baseline) == []


def test_gate_enforces_absolute_speedup_floor():
    # even a brand-new (identical) baseline cannot excuse a geomean
    # below the acceptance floor
    current = payload(2.5)
    problems = cb.compare_to_baseline(current, payload(2.5))
    assert any("3.0x" in problem for problem in problems)


def test_gate_enforces_delta_ratio_ceiling():
    current = payload(4.0, delta_ratio=0.40)
    problems = cb.compare_to_baseline(current, payload(4.0))
    assert any("delta" in problem for problem in problems)


def test_gate_fails_on_relative_regression():
    baseline = payload(6.0)
    current = payload(4.0)  # 33% down, but above the absolute floor
    problems = cb.compare_to_baseline(current, baseline)
    assert problems
    assert any("mcf" in problem for problem in problems)
    assert any("overall" in problem for problem in problems)


def test_gate_flags_missing_benchmark():
    baseline = payload(4.0)
    current = payload(4.0)
    del current["benchmarks"]["swim"]
    problems = cb.compare_to_baseline(current, baseline)
    assert any("missing" in problem for problem in problems)


def test_gate_fails_on_divergence():
    current = payload(4.0)
    current["summary"]["ipc_equal"] = False
    problems = cb.compare_to_baseline(current, payload(4.0))
    assert any("diverged" in problem for problem in problems)


def test_format_table_mentions_every_cell():
    text = cb.format_table(payload(4.0))
    for bench in ("mcf", "swim"):
        assert bench in text
    for policy in ("simpoint", "simpoint-ckpt"):
        assert policy in text
    assert "geomean" in text


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    cb.write_baseline(payload(4.0), str(path))
    assert cb.load_baseline(str(path)) == payload(4.0)


def test_committed_baseline_satisfies_its_own_gate():
    """The checked-in BENCH_checkpoint.json must pass the absolute
    acceptance criteria it gates CI with."""
    import os
    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        cb.DEFAULT_BASELINE)
    baseline = cb.load_baseline(path)
    assert cb.compare_to_baseline(baseline, baseline) == []
    assert baseline["summary"]["speedup_geomean"] \
        >= cb.MIN_SPEEDUP_GEOMEAN
    assert baseline["summary"]["delta_ratio_max"] <= cb.MAX_DELTA_RATIO


def test_measure_pair_end_to_end(tmp_path):
    """One real cold/warm subprocess measurement at the tiny size."""
    result = cb.measure_pair("art", "simpoint-ckpt", "tiny", repeats=1)
    assert result["ipc_equal"]
    assert result["cold_seconds"] > 0
    assert result["warm_seconds"] > 0
    assert result["warm_restores"] > 0
    assert 0 <= result["delta_ratio"] <= 1
