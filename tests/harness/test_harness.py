"""Tests for the experiment harness (registry, cache, traces)."""

import pytest

from repro.harness import (ResultStore, collect_interval_trace,
                           compare_phase_detection, make_spec,
                           modeled_seconds_for, phase_match_score,
                           policy_factory, run_policy)
from repro.harness.traces import PhaseComparison
from repro.sampling import (DynamicSampler, FullTiming, SimPointSampler,
                            SmartsSampler)


# ----------------------------------------------------------------------
# policy registry

def test_policy_factory_known_keys():
    assert isinstance(policy_factory("full")(), FullTiming)
    assert isinstance(policy_factory("smarts")(), SmartsSampler)
    assert isinstance(policy_factory("simpoint")(), SimPointSampler)
    assert isinstance(policy_factory("simpoint+prof")(), SimPointSampler)
    sampler = policy_factory("CPU-300-1M-inf")()
    assert isinstance(sampler, DynamicSampler)
    assert sampler.config.max_func is None
    assert sampler.config.sensitivity == pytest.approx(3.0)
    sampler = policy_factory("IO-100-10M-10")()
    assert sampler.config.max_func == 10
    assert sampler.config.interval_length == 10000


def test_policy_factory_unknown_key():
    with pytest.raises(KeyError):
        policy_factory("magic")
    with pytest.raises(KeyError):
        policy_factory("XYZ-300-1M-inf")


# ----------------------------------------------------------------------
# result cache

def make_result(policy="p", benchmark="b", ipc=1.0, seconds=1.0):
    from repro.sampling import PolicyResult
    return PolicyResult(
        policy=policy, benchmark=benchmark, ipc=ipc,
        total_instructions=1000, fast_instructions=0,
        profile_instructions=0, warming_instructions=0,
        timed_instructions=1000, timed_intervals=1,
        wall_seconds=seconds, modeled_seconds=seconds)


def test_result_store_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "results-v2")
    key = "gzip|full|tiny|abc"
    assert store.get(key) is None
    result = make_result("full", "gzip", ipc=1.5)
    store.put(key, result)
    assert store.get(key).ipc == 1.5
    # survives a fresh instance (really persisted)
    again = ResultStore(tmp_path / "results-v2")
    assert again.get(key).benchmark == "gzip"
    assert (tmp_path / "results-v2" / "gzip.json").exists()


def test_result_store_corrupt_shard(tmp_path):
    root = tmp_path / "results-v2"
    root.mkdir()
    (root / "gzip.json").write_text("{ not json")
    store = ResultStore(root)
    assert store.get("gzip|full|tiny|abc") is None
    # a put over the corrupt shard recovers it
    store.put("gzip|full|tiny|abc", make_result("full", "gzip"))
    assert ResultStore(root).get("gzip|full|tiny|abc") is not None


def test_run_policy_uses_store(tmp_path):
    store = ResultStore(tmp_path / "results-v2")
    first = run_policy("gzip", "EXC-300-1M-10", size="tiny",
                       store=store)
    second = run_policy("gzip", "EXC-300-1M-10", size="tiny",
                        store=store)
    assert first.ipc == second.ipc
    assert first.fingerprint  # stamped by the exec layer
    spec = make_spec("gzip", "EXC-300-1M-10", "tiny")
    assert store.get(spec.key) is not None


def test_modeled_seconds_for_simpoint_prof(tmp_path):
    store = ResultStore(tmp_path / "results-v2")
    result = run_policy("gzip", "simpoint", size="tiny", store=store)
    base = modeled_seconds_for("simpoint", result)
    with_prof = modeled_seconds_for("simpoint+prof", result)
    assert with_prof > base


# ----------------------------------------------------------------------
# traces

def test_interval_trace_shapes():
    trace = collect_interval_trace("gzip", size="tiny",
                                   max_intervals=30)
    assert trace.intervals <= 30
    assert len(trace.ipc) == trace.intervals
    assert len(trace.starts) == trace.intervals
    for variable in ("CPU", "EXC", "IO"):
        assert len(trace.stats[variable]) == trace.intervals
    assert all(0 <= ipc <= 3.2 for ipc in trace.ipc)


def test_phase_comparison_runs():
    comparison = compare_phase_detection("gzip", size="tiny",
                                         variable="EXC",
                                         sensitivity=100)
    assert comparison.num_intervals > 0
    assert isinstance(comparison.simpoint_intervals, list)


def test_phase_match_score():
    comparison = PhaseComparison(
        benchmark="x", interval_length=1000, num_intervals=100,
        simpoint_intervals=[10, 50, 90],
        dynamic_intervals=[12, 49, 70])
    assert phase_match_score(comparison, tolerance=5) \
        == pytest.approx(2 / 3)
    empty = PhaseComparison("x", 1000, 100, [10], [])
    assert phase_match_score(empty) == 0.0
