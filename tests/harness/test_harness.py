"""Tests for the experiment harness (registry, cache, traces)."""

import pytest

from repro.harness import (ResultCache, collect_interval_trace,
                           compare_phase_detection, modeled_seconds_for,
                           phase_match_score, policy_factory, run_policy)
from repro.harness.traces import PhaseComparison
from repro.sampling import (DynamicSampler, FullTiming, SimPointSampler,
                            SmartsSampler)


# ----------------------------------------------------------------------
# policy registry

def test_policy_factory_known_keys():
    assert isinstance(policy_factory("full")(), FullTiming)
    assert isinstance(policy_factory("smarts")(), SmartsSampler)
    assert isinstance(policy_factory("simpoint")(), SimPointSampler)
    assert isinstance(policy_factory("simpoint+prof")(), SimPointSampler)
    sampler = policy_factory("CPU-300-1M-inf")()
    assert isinstance(sampler, DynamicSampler)
    assert sampler.config.max_func is None
    assert sampler.config.sensitivity == pytest.approx(3.0)
    sampler = policy_factory("IO-100-10M-10")()
    assert sampler.config.max_func == 10
    assert sampler.config.interval_length == 10000


def test_policy_factory_unknown_key():
    with pytest.raises(KeyError):
        policy_factory("magic")
    with pytest.raises(KeyError):
        policy_factory("XYZ-300-1M-inf")


# ----------------------------------------------------------------------
# result cache

def make_result(policy="p", benchmark="b", ipc=1.0, seconds=1.0):
    from repro.sampling import PolicyResult
    return PolicyResult(
        policy=policy, benchmark=benchmark, ipc=ipc,
        total_instructions=1000, fast_instructions=0,
        profile_instructions=0, warming_instructions=0,
        timed_instructions=1000, timed_intervals=1,
        wall_seconds=seconds, modeled_seconds=seconds)


def test_result_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache.json")
    assert cache.get("k") is None
    result = make_result("full", "gzip", ipc=1.5)
    cache.put("k", result)
    loaded = cache.get("k")
    assert loaded.ipc == 1.5
    # survives a fresh instance (really persisted)
    again = ResultCache(tmp_path / "cache.json")
    assert again.get("k").benchmark == "gzip"


def test_result_cache_corrupt_file(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{ not json")
    cache = ResultCache(path)
    assert cache.get("anything") is None


def test_run_policy_uses_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache.json")
    first = run_policy("gzip", "EXC-300-1M-10", size="tiny", cache=cache)
    second = run_policy("gzip", "EXC-300-1M-10", size="tiny", cache=cache)
    assert first.ipc == second.ipc
    assert (tmp_path / "cache.json").exists()


def test_modeled_seconds_for_simpoint_prof(tmp_path):
    cache = ResultCache(tmp_path / "cache.json")
    result = run_policy("gzip", "simpoint", size="tiny", cache=cache)
    base = modeled_seconds_for("simpoint", result)
    with_prof = modeled_seconds_for("simpoint+prof", result)
    assert with_prof > base


# ----------------------------------------------------------------------
# traces

def test_interval_trace_shapes():
    trace = collect_interval_trace("gzip", size="tiny",
                                   max_intervals=30)
    assert trace.intervals <= 30
    assert len(trace.ipc) == trace.intervals
    assert len(trace.starts) == trace.intervals
    for variable in ("CPU", "EXC", "IO"):
        assert len(trace.stats[variable]) == trace.intervals
    assert all(0 <= ipc <= 3.2 for ipc in trace.ipc)


def test_phase_comparison_runs():
    comparison = compare_phase_detection("gzip", size="tiny",
                                         variable="EXC",
                                         sensitivity=100)
    assert comparison.num_intervals > 0
    assert isinstance(comparison.simpoint_intervals, list)


def test_phase_match_score():
    comparison = PhaseComparison(
        benchmark="x", interval_length=1000, num_intervals=100,
        simpoint_intervals=[10, 50, 90],
        dynamic_intervals=[12, 49, 70])
    assert phase_match_score(comparison, tolerance=5) \
        == pytest.approx(2 / 3)
    empty = PhaseComparison("x", 1000, 100, [10], [])
    assert phase_match_score(empty) == 0.0
