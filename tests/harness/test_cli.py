"""Tests for the ``python -m repro`` command-line interface."""

import os

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    # the default store resolves REPRO_CACHE_DIR lazily per lookup,
    # so pointing the env at a temp dir is all the isolation we need
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "gzip" in out
    assert "apsi" in out
    assert "CPU-300-1M-inf" in out


def test_run_command(capsys):
    code = main(["run", "gzip", "--policy", "EXC-300-1M-10",
                 "--size", "tiny"])
    assert code == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "vs full" in out


def test_run_full_policy(capsys):
    assert main(["run", "mcf", "--policy", "full", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "vs full" not in out  # no self-comparison


def test_suite_command(capsys):
    code = main(["suite", "--policy", "EXC-300-1M-10", "--size", "tiny",
                 "--benchmarks", "gzip,mcf"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean error" in out
    assert "speedup" in out


def test_figure_command(capsys):
    assert main(["figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out


def test_figure_unknown(capsys):
    assert main(["figure", "fig99"]) == 2


def test_exec_command(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
_start:
    la t1, msg
    li t2, 3
    li t0, 1
    li t7, 1
    ecall
    li t0, 5
    li t7, 0
    ecall
msg:
    .ascii "ok\\n"
""")
    assert main(["exec", str(source)]) == 5
    out = capsys.readouterr().out
    assert "ok" in out
    assert "exit code 5" in out


def test_run_json_output(capsys):
    import json
    code = main(["run", "gzip", "--policy", "EXC-300-1M-10",
                 "--size", "tiny", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["benchmark"] == "gzip"
    assert payload["policy"].startswith("dynamic:")
    modes = payload["mode_breakdown"]["instructions"]
    assert modes["total"] == sum(
        modes[mode] for mode in ("fast", "profile", "warming", "timed"))
    assert set(payload["vs_full"]) == {"error", "speedup"}
    assert "exceptions" in payload["vm_stats"]


def test_suite_json_output(capsys):
    import json
    code = main(["suite", "--policy", "EXC-300-1M-10", "--size", "tiny",
                 "--benchmarks", "gzip,mcf", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert [row["benchmark"] for row in payload["benchmarks"]] == \
        ["gzip", "mcf"]
    assert "mean_error" in payload and "speedup" in payload


def test_suite_parallel_matches_serial(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    assert main(["suite", "--policy", "EXC-300-1M-10", "--size", "tiny",
                 "--benchmarks", "gzip,mcf"]) == 0
    serial_out = capsys.readouterr().out
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    assert main(["suite", "--policy", "EXC-300-1M-10", "--size", "tiny",
                 "--benchmarks", "gzip,mcf", "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    # stdout (ipc / error / speedup report) is identical: the grid is
    # deterministic regardless of backend
    assert parallel_out == serial_out


def test_suite_progress_goes_to_stderr(capsys):
    assert main(["suite", "--policy", "EXC-300-1M-10", "--size", "tiny",
                 "--benchmarks", "gzip"]) == 0
    captured = capsys.readouterr()
    assert "gzip:EXC-300-1M-10:tiny" in captured.err
    assert "[2/2]" in captured.err
    assert "gzip:EXC-300-1M-10:tiny" not in captured.out


def test_suite_resume_serves_from_store(capsys):
    args = ["suite", "--policy", "EXC-300-1M-10", "--size", "tiny",
            "--benchmarks", "gzip,mcf"]
    assert main(args) == 0
    first = capsys.readouterr()
    assert "cached" not in first.err
    assert "served-from-store: 0/4" in first.out
    assert main(args) == 0
    second = capsys.readouterr()
    assert second.err.count("cached") == 4  # 2 benchmarks x 2 policies
    assert "served-from-store: 4/4" in second.out
    # apart from the store-hit line, the report is identical: the grid
    # is deterministic regardless of where results come from
    strip = lambda text: [line for line in text.splitlines()
                          if not line.startswith("served-from-store")]
    assert strip(second.out) == strip(first.out)


def test_run_verbose_prints_decision_log(capsys):
    code = main(["run", "gzip", "--policy", "EXC-300-1M-10",
                 "--size", "tiny", "--verbose"])
    assert code == 0
    out = capsys.readouterr().out
    decision_lines = [line for line in out.splitlines()
                      if line.startswith("i=")]
    assert decision_lines, "expected one decision line per interval"
    first = decision_lines[0]
    assert "EXC d=" in first and "rel=" in first and "S=3.00" in first
    assert "-> functional" in first or "-> TIMED" in first
    # the normal summary still follows the log
    assert "IPC" in out


def test_run_summary_surfaces_vm_stats(capsys):
    code = main(["run", "gzip", "--policy", "EXC-300-1M-10",
                 "--size", "tiny", "--no-cache"])
    assert code == 0
    out = capsys.readouterr().out
    assert "modes     :" in out
    assert "vm stats  :" in out
    assert "exceptions:" in out  # per-kind breakdown


def test_trace_command(tmp_path, capsys):
    import json
    out_path = tmp_path / "trace.json"
    events_path = tmp_path / "events.jsonl"
    code = main(["trace", "gzip", "--policy", "EXC-300-1M-10",
                 "--size", "tiny", "--out", str(out_path),
                 "--events", str(events_path)])
    assert code == 0
    trace = json.loads(out_path.read_text())
    phases = {record["ph"] for record in trace["traceEvents"]}
    assert {"X", "i", "C", "M"} <= phases
    decision = [record for record in trace["traceEvents"]
                if record.get("cat") == "decision"]
    assert decision and "variables" in decision[0]["args"]
    from repro.obs import decision_timeline, read_jsonl
    assert decision_timeline(read_jsonl(events_path))
    assert "mode spans" in capsys.readouterr().out


def test_trace_accepts_fractional_sensitivity(tmp_path):
    out_path = tmp_path / "trace.json"
    code = main(["trace", "gzip", "--policy", "CPU-0.3-1M-1000",
                 "--size", "tiny", "--out", str(out_path)])
    assert code == 0
    assert out_path.exists()


def test_suite_reports_checkpoint_restores(capsys):
    # cold sweep: populates the ladder; forced warm sweep: the
    # re-executed SimPoint jobs fast-forward by restoring rungs
    argv = ["suite", "--policy", "simpoint-ckpt", "--size", "tiny",
            "--benchmarks", "gzip"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "restored-from-checkpoint:" in first
    assert main(argv + ["--force"]) == 0
    second = capsys.readouterr().out
    restored = int(second.split("restored-from-checkpoint:")[1]
                   .split()[0])
    assert restored > 0


def test_bench_checkpoint_suite_unknown_baseline(tmp_path, capsys):
    # --check against a missing baseline reports cleanly (exit 2);
    # the measurement itself runs one real cold/warm pair
    code = main(["bench", "--suite", "checkpoint", "--size", "tiny",
                 "--benchmarks", "art", "--repeats", "1",
                 "--check", "--baseline", str(tmp_path / "none.json")])
    assert code == 2
    out = capsys.readouterr().out
    assert "simpoint-ckpt" in out
