"""Tests for the ``python -m repro`` command-line interface."""

import os

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    # the default ResultCache was created at import time; point run_policy
    # at a fresh one for these tests
    from repro.harness import experiments
    monkeypatch.setattr(experiments, "_DEFAULT_CACHE",
                        experiments.ResultCache(tmp_path / "c.json"))


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "gzip" in out
    assert "apsi" in out
    assert "CPU-300-1M-inf" in out


def test_run_command(capsys):
    code = main(["run", "gzip", "--policy", "EXC-300-1M-10",
                 "--size", "tiny"])
    assert code == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "vs full" in out


def test_run_full_policy(capsys):
    assert main(["run", "mcf", "--policy", "full", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "vs full" not in out  # no self-comparison


def test_suite_command(capsys):
    code = main(["suite", "--policy", "EXC-300-1M-10", "--size", "tiny",
                 "--benchmarks", "gzip,mcf"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean error" in out
    assert "speedup" in out


def test_figure_command(capsys):
    assert main(["figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out


def test_figure_unknown(capsys):
    assert main(["figure", "fig99"]) == 2


def test_exec_command(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
_start:
    la t1, msg
    li t2, 3
    li t0, 1
    li t7, 1
    ecall
    li t0, 5
    li t7, 0
    ecall
msg:
    .ascii "ok\\n"
""")
    assert main(["exec", str(source)]) == 5
    out = capsys.readouterr().out
    assert "ok" in out
    assert "exit code 5" in out
