"""Tests for the table/figure builders (tiny scale, isolated cache)."""

import pytest

from repro.harness import figures


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    # the default store resolves REPRO_CACHE_DIR lazily per lookup
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


def test_table1_lists_paper_parameters():
    text, data = figures.build_table1()
    assert "192" in text            # instruction window
    assert "1024KB" in text         # paper L2
    assert "16KB" in text           # scaled L2
    assert len(data["rows"]) >= 15


def test_table2_tiny_subset():
    text, data = figures.build_table2(size="tiny",
                                      benchmarks=["gzip", "mcf"])
    assert "gzip" in text and "mcf" in text
    assert data["gzip"]["instructions"] > 10_000
    assert data["mcf"]["simpoints"] >= 1


def test_figure2_correlation_positive():
    text, data = figures.build_figure2("gzip", size="tiny",
                                       max_intervals=60)
    assert "Figure 2" in text
    assert data["intervals"] > 10
    assert -1.0 <= data["correlation"] <= 1.0


def test_figure4_phase_detection():
    text, data = figures.build_figure4("gzip", size="tiny",
                                       variable="EXC")
    assert "Figure 4" in text
    assert 0.0 <= data["match_score"] <= 1.0


def test_policy_suite_numbers_shapes():
    numbers = figures._policy_suite_numbers(
        ("full", "EXC-300-1M-10"), "tiny", ["gzip", "mcf"])
    assert numbers["full"]["speedup"] == 1.0
    policy = numbers["EXC-300-1M-10"]
    assert policy["speedup"] > 1.0
    assert set(policy["per_benchmark"]) == {"gzip", "mcf"}
    for record in policy["per_benchmark"].values():
        assert record["seconds"] > 0
        assert record["error"] >= 0


def test_paper_reference_points_complete():
    for policy in figures.FIGURE5_POLICIES:
        assert policy in figures.PAPER_FIGURE5
        error, speed = figures.PAPER_FIGURE5[policy]
        assert error > 0 and speed > 1
