"""Perf-trajectory history: metric extraction, the append-only JSONL
store, and the rolling-window regression detector."""

import json

from repro.harness import history

HOTPATH_PAYLOAD = {
    "schema_version": 1,
    "modes": ["warming", "timed"],
    "sizes": {
        "tiny": {
            "summary": {
                "warming": {"fast_ips_geomean": 1.5e6,
                            "slow_ips_geomean": 3.0e5,
                            "speedup_geomean": 5.0},
                "timed": {"fast_ips_geomean": 9.0e5,
                          "slow_ips_geomean": 3.0e5,
                          "speedup_geomean": 3.0},
                "overall_speedup_geomean": 3.873,
            },
        },
    },
}

CHECKPOINT_PAYLOAD = {
    "summary": {
        "speedup_geomean": 2.3,
        "overall_speedup_geomean": 2.1,
        "delta_ratio_max": 0.03,
        "simpoint-ckpt_speedup_geomean": 2.3,
        "benchmarks": ["gzip"],  # non-numeric: ignored
    },
}


def test_extract_metrics_keeps_only_ratios():
    metrics = history.extract_metrics("hotpath", HOTPATH_PAYLOAD)
    assert metrics == {
        "hotpath.tiny.warming.speedup_geomean": 5.0,
        "hotpath.tiny.timed.speedup_geomean": 3.0,
        "hotpath.tiny.overall_speedup_geomean": 3.873,
    }
    # absolute instructions/second never enter the history
    assert not any("ips" in key for key in metrics)

    metrics = history.extract_metrics("checkpoint", CHECKPOINT_PAYLOAD)
    assert metrics == {
        "checkpoint.speedup_geomean": 2.3,
        "checkpoint.overall_speedup_geomean": 2.1,
        "checkpoint.delta_ratio_max": 0.03,
        "checkpoint.simpoint-ckpt_speedup_geomean": 2.3,
    }


def test_extract_metrics_frontier_speedups():
    payload = {
        "policies": {
            "stratified-12": {"error": 0.06, "speedup": 3.2},
            "rankedset-3": {"error": 0.02, "speedup": 1.5},
            "broken": {"error": 0.0},  # no speedup: skipped
        },
    }
    metrics = history.extract_metrics("frontier", payload)
    assert metrics == {
        "frontier.stratified-12.speedup": 3.2,
        "frontier.rankedset-3.speedup": 1.5,
    }
    # accuracy errors are gated by the baseline comparison, not here
    assert not any("error" in key for key in metrics)


def test_make_entry_shape():
    entry = history.make_entry("hotpath", HOTPATH_PAYLOAD,
                               recorded_at="2026-08-07T00:00:00")
    assert entry["schema"] == history.SCHEMA_VERSION
    assert entry["suite"] == "hotpath"
    assert entry["recorded_at"] == "2026-08-07T00:00:00"
    assert entry["metrics"]["hotpath.tiny.overall_speedup_geomean"] \
        == 3.873


def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "sub" / "HISTORY.jsonl"
    entry = history.make_entry("hotpath", HOTPATH_PAYLOAD,
                               recorded_at="t0")
    assert history.append_history(path, entry) == 1
    assert history.append_history(
        path, history.make_entry("checkpoint", CHECKPOINT_PAYLOAD,
                                 recorded_at="t1")) == 2
    entries = history.load_history(path)
    assert [e["suite"] for e in entries] == ["hotpath", "checkpoint"]
    assert not list(path.parent.glob("*.tmp"))  # atomic rewrite


def test_load_history_tolerates_torn_and_junk_lines(tmp_path):
    path = tmp_path / "HISTORY.jsonl"
    path.write_text(json.dumps({"suite": "hotpath", "metrics": {}})
                    + "\n\n[1, 2]\n{\"suite\": \"chec")
    entries = history.load_history(path)
    assert len(entries) == 1
    assert history.load_history(tmp_path / "missing.jsonl") == []


def _entries(values, suite="hotpath",
             metric="hotpath.tiny.overall_speedup_geomean"):
    return [{"suite": suite, "metrics": {metric: value}}
            for value in values]


def test_detector_flags_speedup_drop_beyond_tolerance():
    healthy = _entries([4.0, 3.9, 4.1, 4.0, 3.95, 3.2])
    assert history.detect_regressions(healthy, "hotpath",
                                      tolerance=0.25) == []
    regressed = _entries([4.0, 3.9, 4.1, 4.0, 3.95, 2.9])
    (problem,) = history.detect_regressions(regressed, "hotpath",
                                            tolerance=0.25)
    assert "overall_speedup_geomean" in problem
    assert "rolling median" in problem


def test_detector_flags_delta_ratio_rise():
    entries = _entries([0.03, 0.031, 0.029, 0.2], suite="checkpoint",
                       metric="checkpoint.delta_ratio_max")
    (problem,) = history.detect_regressions(entries, "checkpoint")
    assert "delta_ratio_max" in problem


def test_detector_uses_rolling_window_not_all_time():
    # ancient fast entries fall outside the window: only the recent
    # plateau is the reference, so the latest entry is healthy
    entries = _entries([8.0, 8.0, 4.0, 4.1, 3.9, 4.0, 4.05, 3.95])
    assert history.detect_regressions(entries, "hotpath",
                                      window=5) == []
    # same curve, window wide enough to reach the ancient entries:
    # the inflated median now flags the latest entry
    assert history.detect_regressions(entries, "hotpath", window=7,
                                      tolerance=0.0)
    entries_bad = _entries([8.0, 8.0, 8.0, 8.0, 4.0])
    assert history.detect_regressions(entries_bad, "hotpath",
                                      window=4)


def test_detector_ignores_other_suites_and_short_history():
    entries = _entries([4.0], suite="hotpath") + _entries(
        [0.03], suite="checkpoint",
        metric="checkpoint.delta_ratio_max")
    assert history.detect_regressions(entries, "hotpath") == []
    assert history.detect_regressions(entries, "checkpoint") == []
    assert history.detect_regressions([], "hotpath") == []


def test_detector_skips_metrics_absent_from_prior_entries():
    entries = _entries([4.0, 4.0])
    entries.append({"suite": "hotpath",
                    "metrics": {"hotpath.small.overall_speedup_geomean":
                                1.0}})
    assert history.detect_regressions(entries, "hotpath") == []


def test_format_history_tail():
    text = history.format_history(_entries([4.0, 3.9]))
    assert "hotpath" in text
    assert "2 entries total" in text
    assert "overall_speedup_geomean=3.90x" in text


def test_committed_history_seed_is_loadable_and_healthy():
    """The repo ships a seeded benchmarks/HISTORY.jsonl so the CI
    trajectory gate has a reference curve from day one."""
    from pathlib import Path
    path = Path(__file__).resolve().parents[2] / history.DEFAULT_HISTORY
    entries = history.load_history(path)
    suites = {entry["suite"] for entry in entries}
    assert {"hotpath", "checkpoint"} <= suites
    for entry in entries:
        assert entry["metrics"], f"empty metrics in {entry}"
        assert not any("ips" in key for key in entry["metrics"])
