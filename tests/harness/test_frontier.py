"""Tests for the accuracy-vs-cost frontier harness and its CI gate."""

import json
import os

import pytest

from repro.harness import frontier
from repro.harness.frontier import (FRONTIER_POLICIES, MIN_POLICIES,
                                    compare_to_baseline, format_table)

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                             "benchmarks", "BENCH_frontier.json")


def payload(policies):
    cells = {name: dict(cell) for name, cell in policies.items()}
    return {
        "schema_version": frontier.SCHEMA_VERSION,
        "size": "tiny",
        "benchmarks": ["gzip"],
        "policies": cells,
        "frontier": [],
        "summary": {"num_policies": len(cells), "num_frontier": 0,
                    "best_error": 0.0, "best_speedup": 1.0},
    }


def zoo(**overrides):
    cells = {f"policy-{i}": {"error": 0.05, "speedup": 4.0,
                             "seconds": 0.25}
             for i in range(MIN_POLICIES)}
    cells.update(overrides)
    return payload(cells)


# ----------------------------------------------------------------------
# gate logic

def test_gate_passes_on_identical_payloads():
    current = zoo()
    assert compare_to_baseline(current, zoo()) == []


def test_gate_fails_below_policy_floor():
    cells = {"only": {"error": 0.1, "speedup": 2.0}}
    problems = compare_to_baseline(payload(cells), payload(cells))
    assert any("policies < required" in problem for problem in problems)


def test_gate_fails_on_missing_policy():
    base = zoo(extra={"error": 0.1, "speedup": 2.0})
    problems = compare_to_baseline(zoo(), base)
    assert any("extra: missing" in problem for problem in problems)


def test_gate_fails_on_speedup_regression():
    base = zoo()
    current = zoo()
    current["policies"]["policy-0"]["speedup"] = 4.0 * 0.5
    problems = compare_to_baseline(current, base, tolerance=0.25)
    assert any("policy-0: speedup" in problem for problem in problems)


def test_gate_tolerates_speedup_within_tolerance():
    current = zoo()
    current["policies"]["policy-0"]["speedup"] = 4.0 * 0.8
    assert compare_to_baseline(current, zoo(), tolerance=0.25) == []


def test_gate_fails_on_error_drift_both_directions():
    for drifted in (0.05 + 0.02, 0.05 - 0.02):
        current = zoo()
        current["policies"]["policy-0"]["error"] = drifted
        problems = compare_to_baseline(current, zoo())
        assert any("policy-0: mean error" in problem
                   for problem in problems), drifted


def test_gate_tolerates_small_error_drift():
    current = zoo()
    current["policies"]["policy-0"]["error"] = 0.05 + 0.005
    assert compare_to_baseline(current, zoo()) == []


# ----------------------------------------------------------------------
# committed baseline

def test_committed_baseline_is_valid_and_self_consistent():
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    assert baseline["schema_version"] == frontier.SCHEMA_VERSION
    assert len(baseline["policies"]) >= MIN_POLICIES
    # the committed sweep is exactly the advertised policy zoo
    assert set(baseline["policies"]) == set(FRONTIER_POLICIES)
    # every frontier member is a swept policy, and the baseline passes
    # its own gate
    assert set(baseline["frontier"]) <= set(baseline["policies"])
    assert compare_to_baseline(baseline, baseline) == []
    for cell in baseline["policies"].values():
        assert cell["speedup"] > 0
        assert 0 <= cell["error"] < 1  # mean IPC error stays sane


def test_committed_baseline_covers_every_policy_family():
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    families = {"smarts", "simpoint", "simpoint-mav", "stratified-12",
                "rankedset-3", "CPU-300-1M-inf"}
    assert families <= set(baseline["policies"])


# ----------------------------------------------------------------------
# rendering

def test_format_table_marks_frontier_and_counts():
    data = zoo()
    data["frontier"] = ["policy-0"]
    data["policies"]["policy-1"]["ci_relative_max"] = 0.173
    text = format_table(data)
    assert "policy-0" in text
    assert "*" in text
    assert "+-17.3%" in text
    assert f">= {MIN_POLICIES} policies" in text


def test_min_policies_matches_issue_contract():
    assert MIN_POLICIES == 6
    assert len(FRONTIER_POLICIES) >= MIN_POLICIES


def test_frontier_policies_all_resolve():
    from repro.harness import policy_factory
    for key in FRONTIER_POLICIES:
        policy_factory(key)  # raises KeyError on an unknown key


def test_unknown_parameterized_keys_rejected():
    from repro.harness import policy_factory
    for key in ("stratified-x", "rankedset-", "stratified-3.5"):
        with pytest.raises(KeyError):
            policy_factory(key)
