"""The symbolic abstract domain backing the codegen verifier."""

from repro.analysis.symstate import (MASK64, ExitDiff, compare_exits,
                                     entry_state, fresh_opaque,
                                     is_concrete, render, strip_ids,
                                     summarize, t_add, t_and, t_cmp,
                                     t_mask64, t_mul, t_not, t_or,
                                     t_sub)


# ----------------------------------------------------------------------
# term algebra


def test_concrete_arithmetic_folds():
    assert t_add(2, 3) == 5
    assert t_sub(10, 4) == 6
    assert t_mul(6, 7) == 42


def test_linear_normalization_cancels():
    n = ("sym", "n")
    # (n + 3) - n == 3 regardless of construction order
    assert t_sub(t_add(n, 3), n) == 3
    # n + n == 2*n == n*2 under the same normal form
    assert strip_ids(t_add(n, n)) == strip_ids(t_mul(2, n))


def test_mask64_idempotent_and_concrete():
    assert t_mask64(-1) == MASK64
    n = ("sym", "n")
    assert t_mask64(t_mask64(n)) == t_mask64(n)


def test_cmp_folds_concrete():
    assert t_cmp("lt", 1, 2) is True
    assert t_cmp("ge", 1, 2) is False
    assert not is_concrete(t_cmp("lt", ("sym", "n"), 2))


def test_bool_connectives_short_circuit():
    sym = t_cmp("eq", ("sym", "n"), 0)
    assert t_or([True, sym]) is True
    assert t_or([False, sym]) == sym
    assert t_and([True, sym]) == sym
    assert t_and([False, sym]) is False
    assert t_not(True) is False


def test_fresh_opaque_terms_distinct_until_stripped():
    a = fresh_opaque("x")
    b = fresh_opaque("x")
    assert a != b
    assert strip_ids(a) == strip_ids(b)


def test_render_handles_nested_and_empty_tuples():
    assert "n" in render(t_add(("sym", "n"), 1))
    # value-tuples (including empty ones) must not crash the
    # pretty-printer — they appear in diff payloads
    diff = ExitDiff("field regs: () vs (1,)")
    assert "regs" in diff.format()


# ----------------------------------------------------------------------
# machine state


def test_entry_state_and_register_defaults():
    st = entry_state(0x1000)
    assert st.read_attr("pc") == 0x1000
    assert st.read_reg(0) == 0
    r5 = st.read_reg(5)
    assert r5 == st.read_reg(5)
    st.write_reg(5, 42)
    assert st.read_reg(5) == 42
    # x0 writes are discarded by the ISA; the domain models the read
    st.write_reg(0, 7)
    assert st.read_reg(0) == 0 or st.regs.get(0) == 7


def test_havoc_bumps_epoch():
    st = entry_state(0x1000)
    st.write_reg(5, 42)
    before = st.read_reg(6)
    st.havoc_registers()
    assert st.read_reg(5) != 42
    assert st.read_reg(6) != before


def test_memory_read_write_fork_faults():
    st = entry_state(0x1000)
    value, fault = st.mem_read(8, ("sym", "addr"))
    fork, exc = fault
    assert fork is not st
    assert exc[0] == "fault"
    assert value[0] == "ld"
    fork2, exc2 = st.mem_write(8, ("sym", "addr"), 1)
    assert exc2[0] == "fault"
    # the fault fork snapshots the pre-store state; the live state
    # records the store
    assert st.stores and not fork2.stores


# ----------------------------------------------------------------------
# exit summaries and diffing


def _exit(pc):
    st = entry_state(0x1000)
    st.write_attr("pc", pc)
    return summarize(st, "return", executed=3)


def test_compare_exits_equal_cancel():
    assert compare_exits([(_exit(0x2000), ())], [_exit(0x2000)]) == []


def test_compare_exits_reports_field_delta():
    diffs = compare_exits([(_exit(0x2000), ())], [_exit(0x3000)])
    assert diffs
    assert any("pc" in d.message for d in diffs)


def test_compare_exits_reports_missing_and_extra():
    diffs = compare_exits([], [_exit(0x2000)])
    assert any("missing exit" in d.message for d in diffs)
    diffs = compare_exits([(_exit(0x2000), ()), (_exit(0x4000), ())],
                          [_exit(0x2000)])
    assert any("extra generated exit" in d.message for d in diffs)
