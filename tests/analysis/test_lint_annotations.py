"""The escape-hatch audit (`lint --annotations`) and baseline
robustness: duplicate-entry merging and stale-entry warnings."""

import io
import json

from repro.analysis.baseline import (Baseline, BaselineEntry,
                                     load_baseline, merge_entries,
                                     write_baseline)
from repro.analysis.lint import (audit_annotations, default_root,
                                 lint_tree, main)

#: the shipped tree's escape-hatch population.  This pin is the audit:
#: adding a new `# repro:` suppression must be a conscious act that
#: updates this number alongside a justification in the comment.
EXPECTED_ANNOTATIONS = 36


# ----------------------------------------------------------------------
# --annotations audit


def test_audit_pins_current_escape_hatch_count():
    rows = audit_annotations(default_root())
    assert len(rows) == EXPECTED_ANNOTATIONS
    assert all(row["directive"] in ("volatile", "store-ok")
               for row in rows)


def test_every_shipped_annotation_is_justified():
    for row in audit_annotations(default_root()):
        assert row["justification"], (
            f"{row['path']}:{row['line']}: {row['directive']} "
            "escape hatch has no justification")


def test_cli_annotations_text_output():
    out = io.StringIO()
    code = main(["--annotations"], stdout=out)
    text = out.getvalue()
    assert code == 0
    assert f"{EXPECTED_ANNOTATIONS} escape hatch(es)" in text
    assert "0 unjustified" in text
    # one clickable file:line row per annotation, plus the summary
    assert text.count(":") >= EXPECTED_ANNOTATIONS


def test_cli_annotations_json_output():
    out = io.StringIO()
    code = main(["--annotations", "--json"], stdout=out)
    payload = json.loads(out.getvalue())
    assert code == 0
    assert payload["ok"] is True
    assert len(payload["annotations"]) == EXPECTED_ANNOTATIONS
    assert payload["unjustified"] == 0
    assert sum(payload["by_directive"].values()) == EXPECTED_ANNOTATIONS


def test_unjustified_annotation_fails_audit(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "mod.py").write_text(
        "import time\n"
        "start = time.perf_counter()  # repro: volatile\n")
    rows = audit_annotations(tree)
    assert rows == [{"path": "mod.py", "line": 2,
                     "directive": "volatile", "justification": ""}]
    out = io.StringIO()
    code = main(["--annotations", "--root", str(tree)], stdout=out)
    assert code == 1
    assert "MISSING JUSTIFICATION" in out.getvalue()


# ----------------------------------------------------------------------
# baseline robustness


def test_duplicate_baseline_entries_merge_counts(tmp_path):
    # two identical single-count entries must budget exactly like one
    # entry with count=2 (hand-merged baselines carry such duplicates)
    entry = BaselineEntry("REPRO001", "a.py", "time.time()", 1)
    merged = merge_entries([entry, entry])
    assert merged == [BaselineEntry("REPRO001", "a.py",
                                    "time.time()", 2)]
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": [entry.to_dict(), entry.to_dict()]}))
    baseline = load_baseline(path)
    assert len(baseline.entries) == 1
    assert baseline.entries[0].count == 2


def test_fix_baseline_warns_about_dropped_stale_entries(tmp_path):
    findings = lint_tree(default_root()).findings
    baseline_path = tmp_path / "baseline.json"
    stale = BaselineEntry("REPRO001", "gone.py", "time.time()", 2)
    baseline = Baseline(list(write_baseline(findings,
                                            baseline_path).entries))
    baseline.entries.append(stale)
    baseline_path.write_text(json.dumps(baseline.to_dict()))

    out = io.StringIO()
    code = main(["--root", str(default_root()),
                 "--baseline", str(baseline_path), "--fix-baseline"],
                stdout=out)
    text = out.getvalue()
    assert code == 0
    assert "dropping stale baseline entry" in text
    assert "gone.py x2" in text
    # the regenerated file no longer carries the stale entry
    regenerated = load_baseline(baseline_path)
    assert all(entry.path != "gone.py" for entry in regenerated.entries)


def test_fix_baseline_quiet_when_nothing_stale(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    main(["--root", str(default_root()),
          "--baseline", str(baseline_path), "--fix-baseline"],
         stdout=io.StringIO())
    out = io.StringIO()
    code = main(["--root", str(default_root()),
                 "--baseline", str(baseline_path), "--fix-baseline"],
                stdout=out)
    assert code == 0
    assert "stale" not in out.getvalue()
