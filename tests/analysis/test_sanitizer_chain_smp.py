"""Sanitizer coverage for the megablock chained-dispatch call form,
sourced from a live 2-core SMP run.

The direct-threaded fallback (``_chainN(state, budget)`` call stubs)
is the one place generated code calls another generated function; the
sanitizer admits exactly that call shape under the ``mega`` flavor and
nothing looser.  These tests feed it real fallback sources built by a
two-hart machine rather than hand-written fixtures.
"""

import pytest

from repro.analysis import symexec
from repro.analysis.sanitizer import (SanitizerError,
                                      sanitize_block_source)
from repro.timing import OutOfOrderCore, TimingConfig
from repro.timing.codegen import TimedBlockCodegen
from repro.vm import MODE_EVENT
from repro.vm import translator as translator_module
from repro.workloads import SUITE_MACHINE_KWARGS, build_parallel


def _chain_env(source):
    """The exact environment the chain linker binds for a threaded
    chain: the base names plus one ``_chainN`` per fragment."""
    env = {"GuestFault", "VS", "IRQ", "GEN"}
    env.update(name for name in
               (f"_chain{i}" for i in range(64)) if name in source)
    return frozenset(env)


@pytest.fixture(scope="module")
def smp_chain_sources():
    """Threaded-chain sources captured from a 2-core run with inline
    fusion disabled, so every chain takes the fallback call form."""
    def boom(*args, **kwargs):
        raise ValueError("forced threaded fallback")

    translator_module._CODE_CACHE.clear()
    system = build_parallel("lockcnt", size="tiny").boot(
        n_cores=2, **SUITE_MACHINE_KWARGS)
    machine = system.machine
    sinks = []
    for core in machine.cores:
        core.translator.generate_chain = boom
        sink = OutOfOrderCore(TimingConfig.small())
        core.register_fast_sink(sink, TimedBlockCodegen(sink))
        core.fast_promote_threshold = 2
        sinks.append(sink)
    machine.mega_promote_threshold = 4
    with symexec.capture() as captured:
        system.run(12_000, mode=MODE_EVENT, sink=sinks)
    translator_module._CODE_CACHE.clear()
    sources = [item.source for item in captured
               if item.form == "chain-threaded"]
    assert sources, "SMP run built no threaded chains"
    return sources


def test_smp_fallback_sources_sanitize_clean(smp_chain_sources):
    for source in smp_chain_sources:
        sanitize_block_source(source, _chain_env(source), "mega")


def test_chain_call_needs_linker_binding(smp_chain_sources):
    # _chainN is only callable because the linker bound it; outside
    # that environment the same source is an unknown-name rejection
    source = smp_chain_sources[0]
    env = frozenset(name for name in _chain_env(source)
                    if not name.startswith("_chain"))
    with pytest.raises(SanitizerError) as excinfo:
        sanitize_block_source(source, env, "mega")
    assert "_chain" in "\n".join(excinfo.value.reasons)


@pytest.mark.parametrize("mangle", [
    ("_chain0(state, budget)", "_chain0(state)"),
    ("_chain0(state, budget)", "_chain0(budget, state)"),
    ("_chain0(state, budget)", "_chain0(state, budget, 1)"),
    ("_chain0(state, budget)", "_chain0(state.regs, budget)"),
])
def test_malformed_chained_dispatch_rejected(smp_chain_sources, mangle):
    old, new = mangle
    source = next(s for s in smp_chain_sources if old in s)
    with pytest.raises(SanitizerError):
        sanitize_block_source(source.replace(old, new),
                              _chain_env(source), "mega")
