"""The generated-superblock sanitizer: rejections and live coverage."""

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import SanitizerError, sanitize_block_source

ENV = frozenset({
    "M", "ld8", "st8", "SINK", "SyscallTrap", "GuestFault", "CORE",
})


def check(source, env=ENV):
    sanitize_block_source(source, env)


def reasons_of(source, env=ENV):
    with pytest.raises(SanitizerError) as excinfo:
        sanitize_block_source(source, env)
    return "\n".join(excinfo.value.reasons)


# ----------------------------------------------------------------------
# accepted shapes


def test_accepts_representative_block():
    check("""
def _block(state, budget):
    r = state.regs
    r[3] = M(r[1] + r[2])
    ea = M(r[3] + 16)
    r[4] = ld8(state, ea)
    st8(state, ea, r[4])
    CORE.cycle = CORE.cycle + 1
    state.pc = 4096
    state.icount = state.icount + 5
    return 5
""")


def test_accepts_trap_raise_and_env_except():
    check("""
def _block(state, budget):
    try:
        raise SyscallTrap(state.pc)
    except GuestFault:
        state.pc = 0
    return 1
""")


def test_accepts_local_list_mutators():
    check("""
def _block(state, budget):
    ways = state.ways
    way = ways.pop()
    ways.append(way)
    ways.insert(0, way)
    return len(ways)
""")


# ----------------------------------------------------------------------
# rejected shapes


def test_rejects_import():
    assert "Import" in reasons_of("""
def _block(state, budget):
    import os
    return 0
""")


def test_rejects_open_call():
    assert "open" in reasons_of("""
def _block(state, budget):
    handle = open("/etc/passwd")
    return 0
""")


def test_rejects_foreign_attribute_write():
    text = reasons_of("""
def _block(state, budget):
    budget.limit.inner = 0
    return 0
""")
    assert "attribute write" in text


def test_rejects_unknown_name_read():
    assert "unknown name" in reasons_of("""
def _block(state, budget):
    return secret_global + 1
""")


def test_rejects_dunder_access():
    assert "dunder" in reasons_of("""
def _block(state, budget):
    return state.__dict__
""")


def test_rejects_wrong_module_shape():
    assert "exactly one" in reasons_of("x = 1\n")
    assert "exactly one" in reasons_of("""
def _block(state, budget):
    return 0

def _other():
    return 1
""")
    assert "signature" in reasons_of("""
def _block(state, budget, extra):
    return 0
""")


def test_rejects_nested_def_and_lambda():
    assert "nested function" in reasons_of("""
def _block(state, budget):
    def inner():
        return 0
    return inner()
""")
    assert "Lambda" in reasons_of("""
def _block(state, budget):
    f = lambda: 0
    return 0
""")


def test_rejects_foreign_raise():
    assert "raise" in reasons_of("""
def _block(state, budget):
    raise ValueError("nope")
""")


def test_rejects_syntax_error():
    assert "not parseable" in reasons_of("def _block(state budget:\n")


# ----------------------------------------------------------------------
# counters + kill switch


def test_stats_count_checks_and_rejections():
    sanitizer.reset_stats()
    check("def _block(state, budget):\n    return 0\n")
    with pytest.raises(SanitizerError):
        check("import os\n")
    stats = sanitizer.stats()
    assert stats == {"checked": 2, "rejected": 1}
    sanitizer.reset_stats()


def test_enabled_env_switch(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert sanitizer.sanitizer_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not sanitizer.sanitizer_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitizer.sanitizer_enabled()


# ----------------------------------------------------------------------
# live coverage: every block a real run compiles must pass


def test_every_superblock_of_a_real_run_passes(monkeypatch):
    """Boot a guest workload, run it through the fused fast path, and
    require the sanitizer to have vetted every freshly generated
    superblock with zero rejections."""
    from repro.vm import translator as translator_module
    from repro.workloads import load_benchmark

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.setattr(translator_module, "_CODE_CACHE", {})
    sanitizer.reset_stats()
    system = load_benchmark("gzip", size="tiny").boot()
    system.run_to_completion()
    stats = sanitizer.stats()
    assert stats["rejected"] == 0
    assert stats["checked"] > 10  # the run really generated blocks
    sanitizer.reset_stats()
