"""Tests for the analysis helpers (metrics, Pareto, rendering)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (PolicySummary, ascii_scatter, ascii_series,
                            dominates, format_table, harmonic_mean,
                            pareto_frontier, summarize_policy)
from repro.sampling import PolicyResult


def make_result(policy="p", benchmark="b", ipc=1.0, seconds=1.0):
    return PolicyResult(
        policy=policy, benchmark=benchmark, ipc=ipc,
        total_instructions=1000, fast_instructions=0,
        profile_instructions=0, warming_instructions=0,
        timed_instructions=1000, timed_intervals=1,
        wall_seconds=seconds, modeled_seconds=seconds)


# ----------------------------------------------------------------------
# pareto

def test_pareto_frontier_simple():
    points = [("a", 1.0, 10.0), ("b", 2.0, 5.0), ("c", 0.5, 20.0)]
    # c dominates both a and b
    frontier = pareto_frontier(points)
    assert [p[0] for p in frontier] == ["c"]


def test_pareto_frontier_tradeoff():
    points = [("accurate", 0.5, 5.0), ("fast", 5.0, 100.0),
              ("dominated", 5.0, 5.0), ("middle", 2.0, 50.0)]
    frontier = pareto_frontier(points)
    labels = [p[0] for p in frontier]
    assert labels == ["accurate", "middle", "fast"]
    assert "dominated" not in labels


def test_dominates():
    assert dominates((1.0, 10.0), (2.0, 5.0))
    assert not dominates((1.0, 10.0), (0.5, 20.0))
    assert not dominates((1.0, 10.0), (1.0, 10.0))  # equal: no


@given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                          st.floats(0.1, 1000, allow_nan=False)),
                min_size=1, max_size=20))
def test_pareto_frontier_members_are_not_dominated(raw):
    points = [(f"p{i}", e, s) for i, (e, s) in enumerate(raw)]
    frontier = pareto_frontier(points)
    assert frontier  # never empty for non-empty input
    for _, err, speed in frontier:
        for _, other_err, other_speed in points:
            assert not (other_err < err and other_speed > speed)


# ----------------------------------------------------------------------
# metrics

def test_harmonic_mean():
    assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
    assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)
    assert harmonic_mean([]) == 0.0


def test_summarize_policy():
    references = {"x": make_result("full", "x", ipc=1.0, seconds=10.0),
                  "y": make_result("full", "y", ipc=2.0, seconds=10.0)}
    results = [make_result("fast", "x", ipc=1.1, seconds=1.0),
               make_result("fast", "y", ipc=2.0, seconds=1.0)]
    summary = summarize_policy(results, references)
    assert isinstance(summary, PolicySummary)
    assert summary.mean_error == pytest.approx(0.05)
    assert summary.max_error == pytest.approx(0.1)
    assert summary.speedup == pytest.approx(10.0)
    assert summary.benchmarks == 2


def test_summarize_policy_empty():
    with pytest.raises(ValueError):
        summarize_policy([], {})


# ----------------------------------------------------------------------
# rendering

def test_format_table_alignment():
    text = format_table(("name", "value"),
                        [("a", 1), ("long-name", 123456.0)],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert all(len(line) <= 80 for line in lines)


def test_ascii_scatter_contains_markers_and_legend():
    text = ascii_scatter([("one", 1.0, 10.0), ("two", 5.0, 100.0)])
    assert "A" in text
    assert "B" in text
    assert "one" in text and "two" in text


def test_ascii_scatter_empty():
    assert "no points" in ascii_scatter([])


def test_ascii_series_plots():
    text = ascii_series([("ipc", [1.0, 2.0, 1.5, 0.5])], title="demo")
    assert "demo" in text
    assert "*" in text


def test_ascii_series_empty():
    assert "no data" in ascii_series([])
    assert "no data" in ascii_series([("x", [])])
