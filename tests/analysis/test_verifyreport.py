"""The verify-codegen corpus driver: coverage, report shape, gating."""

import json

import pytest

from repro.analysis import verifyreport
from repro.analysis.verifyreport import TIER_ORDER, Finding, VerifyReport


@pytest.fixture(scope="module")
def mcf_report():
    return verifyreport.run_corpus(corpus="tiny", benchmarks=["mcf"])


def test_single_benchmark_covers_every_tier(mcf_report):
    assert mcf_report.ok
    for tier in TIER_ORDER:
        assert mcf_report.verified[tier] > 0, f"tier {tier} not covered"
    assert mcf_report.total == sum(mcf_report.verified.values())


def test_report_json_round_trips(mcf_report):
    payload = json.loads(mcf_report.to_json())
    assert payload["ok"] is True
    assert payload["corpus"] == "tiny"
    assert payload["findings"] == []
    assert payload["total"] == mcf_report.total
    assert set(payload["verified"]) == set(TIER_ORDER)


def test_report_render_lists_tiers(mcf_report):
    text = mcf_report.render()
    for tier in TIER_ORDER:
        assert tier in text
    assert "proven equivalent" in text


def test_findings_fail_the_report():
    report = VerifyReport(corpus="tiny", benchmarks=["x"])
    report.findings.append(Finding(
        bench="x", tier="fast", label="fast@0x1000",
        messages=["field pc: 0x2000 vs 0x3000"], source="def _block..."))
    assert not report.ok
    assert "FAIL x fast@0x1000" in report.render()
    assert json.loads(report.to_json())["ok"] is False


def test_unknown_corpus_rejected():
    with pytest.raises(ValueError):
        verifyreport.run_corpus(corpus="huge")


def test_cli_verify_codegen(capsys):
    from repro.cli import main
    code = main(["verify-codegen", "--corpus", "tiny",
                 "--benchmarks", "mcf", "--json"])
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["total"] > 0
