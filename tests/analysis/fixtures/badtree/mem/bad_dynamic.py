"""Seeded REPRO004 violations (golden fixture — never imported)."""


def run_snippet(snippet):
    code = compile(snippet, "<fixture>", "exec")  # line 5: compile()
    exec(code, {})  # line 6: exec()


def evaluate(expression):
    return eval(expression)  # line 10: eval()
