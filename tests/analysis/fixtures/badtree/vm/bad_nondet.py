"""Seeded REPRO001 violations (golden fixture — never imported)."""

import random
import time


def stamp():
    return time.time()  # line 8: banned wall-clock read


def jitter():
    return random.random()  # line 12: shared global RNG


def unseeded():
    return random.Random()  # line 16: RNG without explicit seed


def seeded_ok():
    return random.Random(42)  # fine: explicit seed


def annotated_ok():
    return time.perf_counter()  # repro: volatile telemetry only


def iterate_bad(values):
    total = 0
    for item in {1, 2, 3}:  # line 28: unordered set iteration
        total += item
    for item in set(values):  # line 30: unordered set iteration
        total += item
    for item in sorted(set(values)):  # fine: sorted
        total += item
    return total
