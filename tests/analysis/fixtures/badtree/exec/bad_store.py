"""Seeded REPRO002 violations (golden fixture — never imported)."""

import json
import os


def bare_write(path, payload):
    with open(path, "w") as handle:  # line 8: in-place open for write
        json.dump(payload, handle)  # line 9: json.dump into the store


def marker(path):
    path.write_text("done")  # line 13: in-place write_text


def atomic_ok(path, payload):
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload))  # fine: temp target
    os.replace(tmp, path)


def blessed(path):
    # repro: store-ok idempotent marker for the fixture
    path.write_text("done")


def read_ok(path):
    with open(path) as handle:  # fine: read-only
        return handle.read()
