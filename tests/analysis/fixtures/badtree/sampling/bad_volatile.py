"""Seeded REPRO003 violations (golden fixture — never imported)."""


def canonical_dict(result):
    return {
        "ipc": result.ipc,
        "wall_seconds": result.wall,  # line 7: volatile key in canonical
    }


def publish(record, seconds):
    record["wall_seconds"] = seconds  # line 12: outside extra/meta

    extra = record.setdefault("extra", {})
    extra["wall_seconds"] = seconds  # fine: named blessed container
    extra["hostname"] = "host"  # fine: blessed container name
