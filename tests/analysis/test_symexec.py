"""Symbolic verification of real generated code, tier by tier.

Each test boots a small guest program, translates its blocks through
the production code generators, and asserts the symbolic verifier
proves every generated source equivalent to the decoded instruction
semantics — zero diffs, across every tier the VM can emit.
"""

import pytest

from repro.analysis.symexec import (verify_block_source,
                                    verify_inline_chain,
                                    verify_threaded_chain)
from repro.isa import assemble
from repro.kernel import boot
from repro.timing import OutOfOrderCore, TimingConfig
from repro.timing.codegen import TimedBlockCodegen, WarmingBlockCodegen
from repro.timing.warming import FunctionalWarmingSink
from repro.vm.chain import emit_chain_source

MASK64 = (1 << 64) - 1

PROGRAMS = {
    "alu": """
_start:
    li t0, 10
    li t1, 3
    add t2, t0, t1
    sub t3, t0, t1
    mul t4, t0, t1
    div t5, t0, t1
    rem t6, t0, t1
    halt
""",
    "memory": """
_start:
    li t0, 4096
    li t1, 77
    sb t1, 0(t0)
    sh t1, 2(t0)
    sw t1, 4(t0)
    sd t1, 8(t0)
    lb t2, 0(t0)
    lbu t3, 0(t0)
    lh t4, 2(t0)
    lhu t5, 2(t0)
    lw t6, 4(t0)
    halt
""",
    "fp": """
_start:
    la  t0, values
    fld f1, 0(t0)
    fld f2, 8(t0)
    fadd f3, f1, f2
    fdiv f6, f1, f2
    fsqrt f7, f2
    fcvtfi t4, f3
    fcvtif f12, t4
    fsd f3, 16(t0)
    j end
    .align 8
values:
    .double 6.0
    .double 4.0
    .double 0.0
end:
    halt
""",
    "branch": """
_start:
    li t0, 1
    li t1, 2
    beq t0, t1, over
    addi t2, t0, 5
over:
    halt
""",
    "jump": """
_start:
    call func
    j end
func:
    li t2, 99
    ret
end:
    halt
""",
    "counters": """
_start:
    rdcycle t0
    rdinstr t1
    addi t2, t1, 1
    rdinstr t3
    halt
""",
    "trap": """
_start:
    li t7, 0
    li t0, 0
    ecall
""",
    "loop": """
_start:
    li s0, 0
    li s1, 2000
loop:
    addi s0, s0, 1
    addi s2, s2, 2
    blt s0, s1, loop
    halt
""",
    "ldloop": """
_start:
    li s0, 4096
    li s1, 5000
loop:
    lw t0, 0(s0)
    addi t0, t0, 1
    sw t0, 0(s0)
    addi s2, s2, 1
    blt s2, s1, loop
    halt
""",
}


def block_starts(tr, entry):
    """Entry block plus fall-throughs and branch/jal targets."""
    seen = {}
    todo = [entry]
    while todo:
        pc = todo.pop()
        if pc in seen:
            continue
        try:
            instrs = tr._decode_block(pc)
        except Exception:
            continue
        seen[pc] = instrs
        last = instrs[-1]
        todo.append(pc + 4 * len(instrs))
        if last.op.name in ("BEQ", "BNE", "BLT", "BGE", "BLTU",
                            "BGEU", "JAL"):
            todo.append((pc + 4 * (len(instrs) - 1) + last.imm * 4)
                        & MASK64)
    return sorted(seen.items())


def _fail(tag, diffs, source):
    detail = "\n".join(d.format() for d in diffs[:3])
    pytest.fail(f"{tag}: {len(diffs)} diff(s)\n{detail}\n"
                f"---- source ----\n{source}")


@pytest.fixture(scope="module")
def translated():
    """(name, translator, blocks, codegens) for every program."""
    rows = []
    for name, src in PROGRAMS.items():
        system = boot(assemble(src))
        tr = system.machine.translator
        cg_t = TimedBlockCodegen(OutOfOrderCore(TimingConfig.small()))
        cg_w = WarmingBlockCodegen(
            FunctionalWarmingSink(OutOfOrderCore(TimingConfig.small())))
        rows.append((name, tr, block_starts(tr, system.machine.state.pc),
                     cg_t, cg_w))
    return rows


def test_fast_and_event_blocks_verify(translated):
    checked = 0
    for name, tr, blocks, _, _ in translated:
        for pc, instrs in blocks:
            for flavor in ("fast", "event"):
                source = tr._generate(pc, instrs, flavor)
                diffs = verify_block_source(source, pc, instrs, flavor)
                if diffs:
                    _fail(f"{name}:{flavor}@{pc:#x}", diffs, source)
                checked += 1
    assert checked >= 2 * len(PROGRAMS)


def test_fused_timed_and_warm_blocks_verify(translated):
    checked = 0
    for name, tr, blocks, cg_t, cg_w in translated:
        for pc, instrs in blocks:
            for cg, flavor in ((cg_t, "timed"), (cg_w, "warm")):
                try:
                    source = tr._generate_fused(pc, instrs, cg)
                except ValueError:
                    continue  # dynamic ring addressing: no fused form
                diffs = verify_block_source(source, pc, instrs, flavor)
                if diffs:
                    _fail(f"{name}:fused-{flavor}@{pc:#x}", diffs,
                          source)
                checked += 1
    assert checked >= len(PROGRAMS)


def _loop_blocks(blocks):
    for pc, instrs in blocks:
        last = instrs[-1]
        if (last.op.name in ("BEQ", "BNE", "BLT", "BGE", "BLTU", "BGEU")
                and pc + 4 * (len(instrs) - 1) + last.imm * 4 == pc):
            yield pc, instrs


def test_inline_chains_verify(translated):
    checked = 0
    for name, tr, blocks, cg_t, cg_w in translated:
        # single-fragment looping chains over every loop-form block
        for pc, instrs in _loop_blocks(blocks):
            for cg, flavor in ((cg_t, "timed"), (cg_w, "warm")):
                try:
                    source = tr.generate_chain([(pc, instrs)], True, cg)
                except ValueError:
                    continue
                diffs = verify_inline_chain(source, [(pc, instrs)],
                                            True)
                if diffs:
                    _fail(f"{name}:chain1-{flavor}@{pc:#x}", diffs,
                          source)
                checked += 1
        # two-fragment chains, open and looped back
        if len(blocks) >= 2:
            frags = blocks[:2]
            for loop_back in (False, True):
                for cg, flavor in ((cg_t, "timed"), (cg_w, "warm")):
                    try:
                        source = tr.generate_chain(frags, loop_back, cg)
                    except ValueError:
                        continue
                    diffs = verify_inline_chain(source, frags,
                                                loop_back)
                    if diffs:
                        _fail(f"{name}:chain2-{flavor} lb={loop_back}",
                              diffs, source)
                    checked += 1
    assert checked >= len(PROGRAMS)


def test_threaded_chains_verify(translated):
    checked = 0
    for name, _, blocks, _, _ in translated:
        items = [(pc, len(instrs)) for pc, instrs in blocks]
        for pc, instrs in _loop_blocks(blocks):
            for flavor in ("event", "timed", "warm"):
                source = emit_chain_source([(pc, len(instrs))], True,
                                           flavor)
                diffs = verify_threaded_chain(
                    source, [(pc, len(instrs))], True)
                if diffs:
                    _fail(f"{name}:thread1-{flavor}@{pc:#x}", diffs,
                          source)
                checked += 1
        if len(items) >= 2:
            chain = items[:2]
            for loop_back in (False, True):
                for flavor in ("event", "timed", "warm"):
                    source = emit_chain_source(chain, loop_back, flavor)
                    diffs = verify_threaded_chain(source, chain,
                                                  loop_back)
                    if diffs:
                        _fail(f"{name}:thread2-{flavor} "
                              f"lb={loop_back}", diffs, source)
                    checked += 1
    assert checked >= len(PROGRAMS)
