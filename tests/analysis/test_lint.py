"""The determinism analyzer: golden findings, self-check, baseline."""

import io
import json
from pathlib import Path

import pytest

from repro.analysis.baseline import (Baseline, BaselineEntry,
                                     load_baseline, write_baseline)
from repro.analysis.lint import (default_baseline_path, default_root,
                                 lint_tree, main)
from repro.analysis.lintmodel import SourceFile

FIXTURES = Path(__file__).parent / "fixtures" / "badtree"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: every violation seeded in the fixture tree: (rule, path, line)
GOLDEN = {
    ("REPRO001", "vm/bad_nondet.py", 8),     # time.time()
    ("REPRO001", "vm/bad_nondet.py", 12),    # random.random()
    ("REPRO001", "vm/bad_nondet.py", 16),    # unseeded random.Random()
    ("REPRO001", "vm/bad_nondet.py", 29),    # set-literal iteration
    ("REPRO001", "vm/bad_nondet.py", 31),    # set(...) iteration
    ("REPRO002", "exec/bad_store.py", 8),    # open(..., "w")
    ("REPRO002", "exec/bad_store.py", 9),    # json.dump
    ("REPRO002", "exec/bad_store.py", 13),   # bare write_text
    ("REPRO003", "sampling/bad_volatile.py", 7),   # canonical dict key
    ("REPRO003", "sampling/bad_volatile.py", 12),  # bare subscript store
    ("REPRO004", "mem/bad_dynamic.py", 5),   # compile()
    ("REPRO004", "mem/bad_dynamic.py", 6),   # exec()
    ("REPRO004", "mem/bad_dynamic.py", 10),  # eval()
}


# ----------------------------------------------------------------------
# golden fixtures


def test_fixture_tree_findings_match_golden():
    report = lint_tree(FIXTURES)
    got = {(f.rule, f.path, f.line) for f in report.findings}
    assert got == GOLDEN
    assert not report.ok


def test_findings_are_sorted_and_formatted():
    report = lint_tree(FIXTURES)
    keys = [f.sort_key for f in report.findings]
    assert keys == sorted(keys)
    first = report.findings[0]
    text = first.format("X/")
    assert text.startswith(f"X/{first.path}:{first.line}:")
    assert first.rule in text


def test_escape_hatches_suppress():
    """The fixtures carry blessed lines next to each violation kind;
    none of them may appear in the findings."""
    report = lint_tree(FIXTURES)
    lines = {(f.path, f.line) for f in report.findings}
    nondet = (FIXTURES / "vm" / "bad_nondet.py").read_text().splitlines()
    annotated = [i for i, line in enumerate(nondet, start=1)
                 if "repro: volatile" in line]
    assert annotated  # the fixture really has an escape hatch
    for line in annotated:
        assert ("vm/bad_nondet.py", line) not in lines
    store = (FIXTURES / "exec" / "bad_store.py").read_text().splitlines()
    blessed = [i for i, line in enumerate(store, start=1)
               if "repro: store-ok" in line]
    assert blessed
    for line in blessed:  # directive covers its own and the next line
        assert ("exec/bad_store.py", line) not in lines
        assert ("exec/bad_store.py", line + 1) not in lines


def test_directive_parsing():
    source = SourceFile(
        Path("x.py"), "vm/x.py",
        "import time\n"
        "a = time.time()  # repro: volatile reason here\n"
        "b = 1\n")
    assert source.directives[2] == ("volatile", "reason here")
    assert source.suppressed(2, "volatile")
    assert source.suppressed(3, "volatile")  # line below the comment
    assert not source.suppressed(2, "store-ok")  # wrong directive
    assert not source.suppressed(1, "volatile")


# ----------------------------------------------------------------------
# shipped tree + committed baseline


def test_shipped_tree_is_clean():
    root = default_root()
    baseline = load_baseline(default_baseline_path(root))
    report = lint_tree(root, baseline)
    assert report.ok, "\n".join(
        f.format() for f in report.new)


def test_committed_baseline_parses_and_matches():
    """Guard: the committed baseline file stays loadable and carries
    no stale entries (the tree didn't get cleaner than it records)."""
    path = REPO_ROOT / "lint-baseline.json"
    assert path.exists()
    raw = json.loads(path.read_text())
    assert raw.get("version") == 1
    baseline = load_baseline(path)
    report = lint_tree(default_root(), baseline)
    assert report.ok
    assert not report.stale, [entry.to_dict() for entry in report.stale]


# ----------------------------------------------------------------------
# baseline mechanics


def test_baseline_absorbs_and_reports_stale(tmp_path):
    findings = lint_tree(FIXTURES).findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, baseline_path)
    baseline = load_baseline(baseline_path)
    new, stale = baseline.match(findings)
    assert not new and not stale
    # drop one finding -> its entry goes stale; add nothing -> no new
    new, stale = baseline.match(findings[1:])
    assert not new
    assert sum(entry.count for entry in stale) == 1


def test_baseline_counts_duplicate_lines():
    finding = lint_tree(FIXTURES).findings[0]
    entry = BaselineEntry(finding.rule, finding.path, finding.snippet,
                          count=2)
    baseline = Baseline([entry])
    new, stale = baseline.match([finding, finding, finding])
    assert len(new) == 1  # third copy exceeds the budget
    assert not stale


def test_missing_baseline_is_empty_and_malformed_raises(tmp_path):
    assert load_baseline(tmp_path / "absent.json").entries == []
    bad = tmp_path / "bad.json"
    bad.write_text("[]")
    with pytest.raises(ValueError):
        load_baseline(bad)


# ----------------------------------------------------------------------
# CLI


def test_cli_exit_codes_and_output(tmp_path):
    out = io.StringIO()
    code = main(["--root", str(FIXTURES), "--no-baseline"], stdout=out)
    assert code == 1
    text = out.getvalue()
    assert "REPRO001" in text and "REPRO004" in text
    assert "bad_nondet.py:8:" in text
    assert "lint FAILED" in text

    out = io.StringIO()
    code = main(["--root", str(default_root())], stdout=out)
    assert code == 0
    assert "lint OK" in out.getvalue()


def test_cli_fix_baseline_roundtrip(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    code = main(["--root", str(FIXTURES),
                 "--baseline", str(baseline_path), "--fix-baseline"],
                stdout=io.StringIO())
    assert code == 0
    assert baseline_path.exists()
    # with the regenerated baseline the same tree now passes
    out = io.StringIO()
    code = main(["--root", str(FIXTURES),
                 "--baseline", str(baseline_path)], stdout=out)
    assert code == 0
    assert f"{len(GOLDEN)} baselined" in out.getvalue()


def test_cli_json_report(tmp_path):
    out = io.StringIO()
    report_path = tmp_path / "findings.json"
    code = main(["--root", str(FIXTURES), "--no-baseline", "--json",
                 "--out", str(report_path)], stdout=out)
    assert code == 1
    payload = json.loads(out.getvalue())
    assert payload["ok"] is False
    assert len(payload["new"]) == len(GOLDEN)
    assert json.loads(report_path.read_text()) == payload


def test_cli_malformed_baseline_is_usage_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    code = main(["--root", str(FIXTURES), "--baseline", str(bad)],
                stdout=io.StringIO())
    assert code == 2


def test_telemetry_modules_are_covered_by_rules():
    """Coverage self-check for the observability modules: the
    telemetry/profiler/history files are opted into REPRO001/REPRO003
    by name, the telemetry writer falls under REPRO002 via its store
    marker, and each opted-in file genuinely contains wall-clock reads
    that only pass because they carry `# repro: volatile` escapes."""
    from repro.analysis.rules import ALL_RULES, TELEMETRY_FILES

    src_root = default_root()
    by_id = {rule.id: rule for rule in ALL_RULES}
    assert set(TELEMETRY_FILES) == {"obs/telemetry.py",
                                    "obs/profiler.py",
                                    "harness/history.py"}
    for rel in TELEMETRY_FILES:
        path = src_root / rel
        assert path.exists(), f"TELEMETRY_FILES names a ghost: {rel}"
        source = SourceFile.load(path, rel)
        assert by_id["REPRO001"].applies_to(source), rel
        assert by_id["REPRO003"].applies_to(source), rel
        # the escapes are load-bearing: scrub the directives and the
        # nondeterminism rule must fire on the naked host-state reads
        scrubbed = SourceFile(path, rel,
                              path.read_text().replace(
                                  "repro: volatile", "scrubbed"))
        assert by_id["REPRO001"].check(scrubbed), (
            f"{rel}: no annotated nondeterminism sources — either the "
            "volatile reads moved or the opt-in is vacuous")

    telemetry_source = SourceFile.load(src_root / "obs/telemetry.py",
                                       "obs/telemetry.py")
    assert by_id["REPRO002"].applies_to(telemetry_source)
