"""Mutation self-check: seeded codegen bugs the verifier must catch.

Each mutant takes a real generated source (a loop-form fast block with
symbolic registers, or a direct-threaded megablock chain) and seeds one
semantic bug on a live path — a dropped register write, an off-by-one
in the instruction accounting, a missing exit-stub guard.  The verifier
must flag every one with at least one diff; a mutant that verifies
clean would mean the proof has a blind spot.

Mutations must live on *live* paths: in straight-line blocks whose
registers are concrete after ``li``, branch conditions fold and the
untaken arm is dead code — a bug there is genuinely unreachable and
verifying it clean is correct, not a miss.
"""

import pytest

from repro.analysis.symexec import (verify_block_source,
                                    verify_threaded_chain)
from repro.isa import assemble
from repro.kernel import boot
from repro.vm.chain import emit_chain_source

LOOP = """
_start:
    li s0, 0
    li s1, 2000
loop:
    addi s0, s0, 1
    addi s2, s2, 2
    blt s0, s1, loop
    halt
"""


@pytest.fixture(scope="module")
def loop_block():
    system = boot(assemble(LOOP))
    tr = system.machine.translator
    pc = system.machine.state.pc + 8  # the loop: block, past the li's
    instrs = tr._decode_block(pc)
    source = tr._generate(pc, instrs, "fast")
    return pc, instrs, source


@pytest.fixture(scope="module")
def threaded_chain(loop_block):
    pc, instrs, _ = loop_block
    chain = [(pc, len(instrs))]
    return chain, emit_chain_source(chain, True, "event")


def mutate(source, old, new):
    assert old in source, f"mutation anchor {old!r} not in source"
    return source.replace(old, new, 1)


BLOCK_MUTANTS = {
    "dropped-register-write": ("r[11] = (r[11] + 2) & M",
                               "pass"),
    "wrong-register-value": ("r[11] = (r[11] + 2) & M",
                             "r[11] = (r[11] + 3) & M"),
    "icount-off-by-one": ("n += 3", "n += 2"),
    "wrong-exit-pc": ("state.pc = 4116", "state.pc = 4120"),
    "condition-flipped": ("if s64(r[9]) < s64(r[10]):",
                          "if s64(r[9]) >= s64(r[10]):"),
    "signedness-dropped": ("if s64(r[9]) < s64(r[10]):",
                           "if r[9] < r[10]:"),
    "budget-off-by-one": ("if n + 3 <= budget:", "if n + 3 < budget:"),
}


@pytest.mark.parametrize("name", sorted(BLOCK_MUTANTS))
def test_block_mutant_caught(loop_block, name):
    pc, instrs, source = loop_block
    old, new = BLOCK_MUTANTS[name]
    diffs = verify_block_source(mutate(source, old, new), pc, instrs,
                                "fast")
    assert diffs, f"verifier missed seeded bug {name}"


def test_pristine_block_still_clean(loop_block):
    pc, instrs, source = loop_block
    assert verify_block_source(source, pc, instrs, "fast") == []


CHAIN_MUTANTS = {
    "missing-halt-guard": (" or state.halted", ""),
    "missing-generation-guard": (" or _gen[0] != _g0", ""),
    "missing-irq-guard": (" or _irq", ""),
    "missing-successor-guard": ("state.pc != 4104 or ", ""),
    "budget-guard-flipped": ("n >= budget", "n > budget"),
    "icount-not-rewound": ("    state.icount -= n\n    VS",
                           "    VS"),
    "dispatch-count-off": ("VS.block_dispatches += d - 1",
                           "VS.block_dispatches += d"),
    "fault-pc-not-restored": (
        "state.pc = 4104 + ((state.block_progress % 3) * 4)",
        "pass"),
}


@pytest.mark.parametrize("name", sorted(CHAIN_MUTANTS))
def test_chain_mutant_caught(threaded_chain, name):
    chain, source = threaded_chain
    old, new = CHAIN_MUTANTS[name]
    diffs = verify_threaded_chain(mutate(source, old, new), chain, True)
    assert diffs, f"verifier missed seeded bug {name}"


def test_pristine_chain_still_clean(threaded_chain):
    chain, source = threaded_chain
    assert verify_threaded_chain(source, chain, True) == []


def test_diff_carries_minimized_trace(loop_block):
    """A diff names the diverging field and points at source lines."""
    pc, instrs, source = loop_block
    old, new = BLOCK_MUTANTS["wrong-exit-pc"]
    diffs = verify_block_source(mutate(source, old, new), pc, instrs,
                                "fast")
    text = "\n".join(d.format() for d in diffs)
    assert "pc" in text
    assert "state.pc = 4120" in text  # the seeded line, in the trace
