"""Tests for trace-driven simulation (record / replay)."""

import pytest

from repro.timing import OutOfOrderCore, TimingConfig
from repro.trace import (EVENT_SIZE, TraceRecorder, iter_trace,
                         record_trace, replay_trace)
from repro.vm import MODE_EVENT, RecordingSink
from repro.workloads import SUITE_MACHINE_KWARGS, WorkloadBuilder


def small_workload():
    builder = WorkloadBuilder("trace-demo", seed=5)
    builder.phase("crc", iters=2000)
    builder.phase("stream", n=256, iters=4)
    builder.phase("branchy", iters=3000)
    return builder.build()


def test_record_and_iterate(tmp_path):
    path = tmp_path / "demo.ztrc"
    events = record_trace(small_workload(), path)
    assert events > 5000
    replayed = list(iter_trace(path))
    assert len(replayed) == events
    # events look sane
    pcs = {event[0] for event in replayed[:100]}
    assert all(pc % 4 == 0 for pc in pcs)


def test_trace_matches_live_event_stream(tmp_path):
    workload = small_workload()
    live = RecordingSink()
    system = workload.boot()
    system.run_to_completion(mode=MODE_EVENT, sink=live)

    path = tmp_path / "demo.ztrc"
    record_trace(workload, path)
    recorded = list(iter_trace(path))
    assert len(recorded) == len(live.events)
    assert recorded[:500] == live.events[:500]
    assert recorded[-500:] == live.events[-500:]


def test_replay_reproduces_execution_driven_timing(tmp_path):
    """Trace-driven and execution-driven timing agree cycle-exactly."""
    workload = small_workload()

    live_core = OutOfOrderCore(TimingConfig.small())
    system = workload.boot()
    system.run_to_completion(mode=MODE_EVENT, sink=live_core)

    path = tmp_path / "demo.ztrc"
    record_trace(workload, path)
    replay_core = OutOfOrderCore(TimingConfig.small())
    replayed = replay_trace(path, replay_core)

    assert replayed == live_core.retired
    assert replay_core.cycles == live_core.cycles
    assert replay_core.stats() == live_core.stats()


def test_replay_supports_different_timing_models(tmp_path):
    """One functional run, several timing experiments."""
    path = tmp_path / "demo.ztrc"
    record_trace(small_workload(), path)
    small = OutOfOrderCore(TimingConfig.small())
    big = OutOfOrderCore(TimingConfig.opteron_like())
    replay_trace(path, small)
    replay_trace(path, big)
    assert small.retired == big.retired
    # the bigger hierarchy never misses more on the same access stream
    assert big.hierarchy.l1d.misses <= small.hierarchy.l1d.misses
    assert big.hierarchy.l2.misses <= small.hierarchy.l2.misses
    # and the two configurations do measure different machines
    assert big.cycles != small.cycles


def test_uncompressed_traces(tmp_path):
    path = tmp_path / "plain.ztrc"
    events = record_trace(small_workload(), path, compress=False)
    assert path.stat().st_size == len(b"ZTRC\x01") + events * EVENT_SIZE
    assert len(list(iter_trace(path))) == events


def test_compression_shrinks_the_file(tmp_path):
    plain = tmp_path / "plain.ztrc"
    packed = tmp_path / "packed.ztrc"
    record_trace(small_workload(), plain, compress=False)
    record_trace(small_workload(), packed, compress=True)
    assert packed.stat().st_size < plain.stat().st_size / 3


def test_max_events_limits_recording_and_replay(tmp_path):
    path = tmp_path / "demo.ztrc"
    record_trace(small_workload(), path, max_instructions=1000)
    total = len(list(iter_trace(path)))
    assert 1000 <= total <= 1100  # block-grain overshoot
    sink = RecordingSink()
    assert replay_trace(path, sink, max_events=100) == 100


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bogus.ztrc"
    path.write_bytes(b"NOPE" + b"\x00" * 64)
    with pytest.raises(ValueError):
        list(iter_trace(path))


def test_recorder_context_manager_flushes(tmp_path):
    path = tmp_path / "ctx.ztrc"
    with TraceRecorder(path, compress=False) as recorder:
        recorder.on_inst(0x1000, 0, 1, 2, 3, 0, 0, 0)
    assert len(list(iter_trace(path))) == 1
