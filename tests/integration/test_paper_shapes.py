"""End-to-end shape tests: the paper's qualitative claims at tiny scale.

These run the complete pipeline (workload -> VM -> timing -> sampling)
on a few tiny benchmarks and assert the *relationships* the paper
establishes, not absolute numbers:

* full timing is the accuracy reference (definitionally exact);
* every sampling policy is cheaper than full timing;
* SMARTS pays for continuous warming (single-digit modeled speedup);
* SimPoint's profiling pass erases most of its speed advantage;
* Dynamic Sampling needs no profiling pass and runs mostly at full
  speed.
"""

import pytest

from repro.harness import run_policy, modeled_seconds_for
from repro.sampling import accuracy_error
from repro.workloads import SUITE_MACHINE_KWARGS, load_benchmark

BENCHES = ("gzip", "mcf", "swim")
SIZE = "tiny"


@pytest.fixture(scope="module")
def results(tmp_path_factory):
    from repro.harness import fetch_results
    store_root = tmp_path_factory.mktemp("cache") / "results-v2"
    from repro.harness import ResultStore
    policies = ("full", "smarts", "simpoint", "EXC-100-1M-10",
                "CPU-300-1M-10")
    grid = fetch_results(list(policies), list(BENCHES), size=SIZE,
                         store=ResultStore(store_root))
    return {policy: {name: grid[(name, policy)] for name in BENCHES}
            for policy in policies}


def test_all_policies_cheaper_than_full(results):
    for policy, per_bench in results.items():
        if policy == "full":
            continue
        for name in BENCHES:
            assert (per_bench[name].modeled_seconds
                    < results["full"][name].modeled_seconds), \
                (policy, name)


def test_sampling_policies_are_roughly_accurate(results):
    """At tiny scale errors are loose, but estimates must be sane.

    SMARTS is excluded: a tiny benchmark only contains a handful of its
    sampling periods, so its CLT-based estimate is undefined there (the
    real SMARTS configuration targets thousands of units).
    """
    for policy, per_bench in results.items():
        if policy == "smarts":
            continue
        for name in BENCHES:
            error = accuracy_error(per_bench[name].ipc,
                                   results["full"][name].ipc)
            assert error < 1.0, (policy, name, error)


def test_smarts_cost_structure(results):
    """SMARTS: warming dominates; no fast execution at all."""
    for name in BENCHES:
        result = results["smarts"][name]
        assert result.fast_instructions == 0
        assert result.warming_instructions > result.timed_instructions


def test_simpoint_cost_structure(results):
    """SimPoint profiles the whole program once."""
    for name in BENCHES:
        result = results["simpoint"][name]
        assert result.profile_instructions \
            >= 0.9 * results["full"][name].total_instructions
        with_prof = modeled_seconds_for("simpoint+prof", result)
        assert with_prof > result.modeled_seconds


def test_dynamic_sampling_cost_structure(results):
    """Dynamic Sampling: mostly fast execution, no profiling."""
    for name in BENCHES:
        result = results["CPU-300-1M-10"][name]
        assert result.profile_instructions == 0
        assert result.fast_instructions > result.timed_instructions


def test_dynamic_sampling_without_profiling_beats_simpoint_end_to_end(
        results):
    """Counting profiling, DS is cheaper than SimPoint (the paper's
    system-level argument for why SimPoint doesn't fit live VMs)."""
    for name in BENCHES:
        ds_seconds = results["EXC-100-1M-10"][name].modeled_seconds
        simpoint_total = modeled_seconds_for(
            "simpoint+prof", results["simpoint"][name])
        assert ds_seconds < simpoint_total


def test_full_timing_ipc_within_machine_width(results):
    for name in BENCHES:
        assert 0.0 < results["full"][name].ipc <= 3.0
