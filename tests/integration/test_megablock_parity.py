"""Megablock tier vs both oracles, across the full parity matrix.

Two matrices, both with the trace-linked tier actually engaged
(promotion thresholds lowered so hot loops chain inside the test
windows — every test asserts ``chains_built > 0`` so the comparison is
never vacuous):

* **engines** — the fused engine with megablocks on must report
  bit-identical results (IPC, mode breakdown, complete VM-stat
  snapshot, decision timeline) against the fused engine with the tier
  off (``REPRO_MEGABLOCKS=0``), the per-instruction event engine, and
  the interpreter oracle (``REPRO_SLOW_PATH=1``);
* **checkpoint policies** — with megablocks on, a sampling policy must
  produce one canonical result with checkpoint acceleration off, cold
  and warm (restores flush code caches, which unlinks every chain —
  the re-chained steady state must not perturb anything the store
  keys or results observe).
"""

import dataclasses

import pytest

from repro import obs
from repro.exec.ckptstore import (CheckpointLadder, CheckpointStore,
                                  program_fingerprint)
from repro.harness.experiments import policy_factory
from repro.sampling import (CheckpointedSimPointSampler, SimPointConfig,
                            SimulationController)
from repro.timing import TimingConfig
from repro.workloads import (SUITE_MACHINE_KWARGS, WorkloadBuilder,
                             load_benchmark)

#: mega = fused engine, tier on; fused = same engine, tier off
ENGINES = ("mega", "fused", "event", "interp")

POLICIES = ("smarts", "CPU-300-1M-inf")

_memo = {}


def chains_built(machine):
    return sum(linker.chains_built
               for linker in machine._chain_linkers.values())


def run_policy_on_engine(policy_key, engine, bench="mcf"):
    """One (policy, engine) cell: result + decision log + chain count."""
    key = (policy_key, engine, bench)
    if key in _memo:
        return _memo[key]
    sink = obs.RingBufferSink(capacity=200_000)
    config = dataclasses.replace(TimingConfig.small(),
                                 fast_path=engine in ("mega", "fused"))
    controller = SimulationController(
        load_benchmark(bench, size="tiny"),
        timing_config=config,
        machine_kwargs=SUITE_MACHINE_KWARGS,
        tracer=obs.Tracer(sink))
    machine = controller.machine
    if engine == "interp":
        machine.fast_path = False  # REPRO_SLOW_PATH=1 equivalent
    if engine == "fused":
        machine.megablocks = False  # REPRO_MEGABLOCKS=0 equivalent
    # chain within the tiny windows (host tiering only — thresholds
    # must not be observable in any result)
    machine.fast_promote_threshold = 2
    machine.mega_promote_threshold = 4
    result = policy_factory(policy_key)().run(controller)
    decisions = [{k: v for k, v in record.items() if k != "ts"}
                 for record in obs.decision_timeline(sink.events)]
    _memo[key] = (result, decisions, chains_built(machine))
    return _memo[key]


@pytest.mark.parametrize("engine", ("fused", "event", "interp"))
@pytest.mark.parametrize("policy_key", POLICIES)
def test_megablock_engine_parity(policy_key, engine):
    mega_result, _, built = run_policy_on_engine(policy_key, "mega")
    other_result, _, _ = run_policy_on_engine(policy_key, engine)
    assert built > 0  # the tier really ran in the mega cell
    assert abs(mega_result.ipc - other_result.ipc) < 1e-9
    assert mega_result.total_instructions \
        == other_result.total_instructions
    assert mega_result.timed_intervals == other_result.timed_intervals
    for mode in ("fast", "profile", "warming", "timed"):
        attr = mode + "_instructions"
        assert getattr(mega_result, attr) == getattr(other_result, attr), \
            f"{attr} differs on {policy_key} vs {engine}"
    # block_dispatches lives in the snapshot: chain accounting must be
    # 1:1 with the fused tier so store keys and thresholds see the
    # same monitored streams
    assert mega_result.extra["vm_stats"] == other_result.extra["vm_stats"]


@pytest.mark.parametrize("engine", ("fused", "event", "interp"))
@pytest.mark.parametrize("policy_key", POLICIES)
def test_megablock_decision_timeline_parity(policy_key, engine):
    _, mega_decisions, _ = run_policy_on_engine(policy_key, "mega")
    _, other_decisions, _ = run_policy_on_engine(policy_key, engine)
    assert mega_decisions == other_decisions


# ----------------------------------------------------------------------
# checkpoint policies off / cold / warm, tier on


def parity_workload():
    builder = WorkloadBuilder("mega-ckpt-parity", seed=5)
    for _ in range(3):
        builder.phase("crc", iters=4000)
        builder.phase("branchy", iters=4000)
    return builder.build()


CONFIG = SimPointConfig(interval_length=1000, max_clusters=10,
                        warmup_length=2000)


def run_ckpt_policy(store_root, mega=True):
    workload = parity_workload()
    controller = SimulationController(
        workload, machine_kwargs=SUITE_MACHINE_KWARGS)
    controller.machine.megablocks = mega
    controller.machine.fast_promote_threshold = 2
    controller.machine.mega_promote_threshold = 4
    if store_root is not None:
        controller.attach_checkpoints(CheckpointLadder(
            CheckpointStore(store_root),
            program_fingerprint(workload), "testcfg"))
    result = CheckpointedSimPointSampler(CONFIG).run(controller)
    return result.canonical_dict(), chains_built(controller.machine)


def test_policy_parity_off_cold_warm_with_megablocks(tmp_path,
                                                     monkeypatch):
    monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
    disabled, _ = run_ckpt_policy(tmp_path / "ckpt")

    monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
    cold, built = run_ckpt_policy(tmp_path / "ckpt")
    warm, _ = run_ckpt_policy(tmp_path / "ckpt")
    tier_off, _ = run_ckpt_policy(None, mega=False)

    assert built > 0  # chains engaged under the checkpointed policy
    assert disabled == cold == warm == tier_off
