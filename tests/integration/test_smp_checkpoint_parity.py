"""Checkpoint acceleration on multi-core guests: invisible, everywhere.

The 2-core analogue of ``test_checkpoint_parity``: every sampling
policy must produce the identical canonical result with checkpoint
acceleration off (``REPRO_CHECKPOINTS=0``), with no store attached,
against a cold store (publishing) and against a warm store (restoring
per-hart register files + the shared frame image) — under all three
execution engines, which must also agree with each other.
"""

import dataclasses

import pytest

from repro.exec.ckptstore import (CheckpointLadder, CheckpointStore,
                                  program_fingerprint)
from repro.sampling import (CheckpointedSimPointSampler, SimPointConfig,
                            SimPointSampler, make_controller)
from repro.timing import TimingConfig
from repro.workloads import SUITE_MACHINE_KWARGS, load_benchmark

ENGINES = ("fused", "event", "interp")

CONFIG = SimPointConfig(interval_length=1000, max_clusters=10,
                        warmup_length=2000)


def run_policy_once(sampler_cls, engine, store_root=None,
                    bench="lockcnt"):
    workload = load_benchmark(bench, size="tiny")
    timing = dataclasses.replace(TimingConfig.small(),
                                 fast_path=engine == "fused")
    controller = make_controller(
        workload, timing_config=timing,
        machine_kwargs={**SUITE_MACHINE_KWARGS, "n_cores": 2})
    if engine == "interp":
        for core in controller.machine.cores:
            core.fast_path = False  # REPRO_SLOW_PATH=1 equivalent
    if store_root is not None:
        controller.attach_checkpoints(CheckpointLadder(
            CheckpointStore(store_root),
            program_fingerprint(workload), f"smp2-{engine}"))
    result = sampler_cls(CONFIG).run(controller)
    return result.canonical_dict(), dict(controller.checkpoint_stats)


@pytest.mark.parametrize("sampler_cls",
                         [SimPointSampler, CheckpointedSimPointSampler])
@pytest.mark.parametrize("engine", ENGINES)
def test_two_core_policy_parity_off_cold_warm(sampler_cls, engine,
                                              tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
    disabled, _ = run_policy_once(sampler_cls, engine,
                                  tmp_path / "ckpt")

    monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
    no_store, _ = run_policy_once(sampler_cls, engine, None)
    cold, cold_stats = run_policy_once(sampler_cls, engine,
                                       tmp_path / "ckpt")
    warm, warm_stats = run_policy_once(sampler_cls, engine,
                                       tmp_path / "ckpt")

    assert disabled == no_store == cold == warm

    assert cold_stats["profile_cache_hits"] == 0
    assert warm_stats["profile_cache_hits"] > 0
    if sampler_cls is CheckpointedSimPointSampler:
        assert cold_stats["published"] > 0
        assert warm_stats["restores"] > 0


@pytest.mark.parametrize("sampler_cls",
                         [SimPointSampler, CheckpointedSimPointSampler])
def test_two_core_engines_agree(sampler_cls):
    """The three engines produce one canonical result for the same
    2-core policy run (no store: pure simulation parity)."""
    results = [run_policy_once(sampler_cls, engine, None)[0]
               for engine in ENGINES]
    assert results[0] == results[1] == results[2]
