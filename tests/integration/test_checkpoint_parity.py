"""Checkpoint equivalence: restores must be invisible to every result.

Two independent guarantees:

* **round trip** — taking a checkpoint mid-run (including mid-event
  mode), diverging, and restoring must leave the guest-visible machine
  (architectural state + the complete VM statistics snapshot)
  bit-identical to never having diverged, under all three execution
  engines (fused fast path, per-instruction event engine, interpreter
  oracle);
* **policy parity** — every sampling policy must produce an identical
  canonical result with checkpoint acceleration off
  (``REPRO_CHECKPOINTS=0``), against a cold store, and against a warm
  store (where fast-forwards restore and profiles/selections are served
  from disk).
"""

import dataclasses

import pytest

from repro.exec.ckptstore import (CheckpointLadder, CheckpointStore,
                                  program_fingerprint)
from repro.kernel.checkpoint import restore, take
from repro.sampling import (CheckpointedSimPointSampler, SimPointConfig,
                            SimPointSampler, SimulationController)
from repro.timing import TimingConfig
from repro.workloads import (SUITE_MACHINE_KWARGS, WorkloadBuilder,
                             load_benchmark)

ENGINES = ("fused", "event", "interp")


def make_controller(engine, size="tiny"):
    config = dataclasses.replace(TimingConfig.small(),
                                 fast_path=engine == "fused")
    controller = SimulationController(
        load_benchmark("gzip", size=size),
        timing_config=config,
        machine_kwargs=SUITE_MACHINE_KWARGS)
    if engine == "interp":
        controller.machine.fast_path = False  # REPRO_SLOW_PATH=1
    return controller


def run_schedule(engine, rewind):
    controller = make_controller(engine)
    controller.run_fast(3000)
    controller.run_timed(900)
    controller.run_warming(700)
    if rewind:
        checkpoint = take(controller.system)
        # diverge hard: more detailed execution, then rewind
        controller.run_timed(1500)
        controller.run_warming(400)
        restore(controller.system, checkpoint)
    controller.run_timed(1200)
    controller.run_warming(300)
    controller.run_timed(800)
    return controller


@pytest.mark.parametrize("engine", ENGINES)
def test_round_trip_parity_all_engines(engine):
    straight = run_schedule(engine, rewind=False)
    rewound = run_schedule(engine, rewind=True)
    assert rewound.machine.state.snapshot() \
        == straight.machine.state.snapshot()
    assert rewound.machine.stats.snapshot() \
        == straight.machine.stats.snapshot()


# ----------------------------------------------------------------------
# policy parity: off / cold store / warm store


def parity_workload():
    builder = WorkloadBuilder("ckpt-parity", seed=3)
    for _ in range(3):
        builder.phase("crc", iters=4000)
        builder.phase("stream", n=512, iters=8, reuse_key="ws")
        builder.phase("branchy", iters=4000)
    return builder.build()


CONFIG = SimPointConfig(interval_length=1000, max_clusters=10,
                        warmup_length=2000)


def run_policy_once(sampler_cls, store_root=None):
    workload = parity_workload()
    controller = SimulationController(
        workload, machine_kwargs=SUITE_MACHINE_KWARGS)
    if store_root is not None:
        controller.attach_checkpoints(CheckpointLadder(
            CheckpointStore(store_root),
            program_fingerprint(workload), "testcfg"))
    result = sampler_cls(CONFIG).run(controller)
    return result.canonical_dict(), dict(controller.checkpoint_stats)


@pytest.mark.parametrize("sampler_cls",
                         [SimPointSampler, CheckpointedSimPointSampler])
def test_policy_parity_off_cold_warm(sampler_cls, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
    disabled, _ = run_policy_once(sampler_cls, tmp_path / "ckpt")

    monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
    no_store, _ = run_policy_once(sampler_cls, None)
    cold, cold_stats = run_policy_once(sampler_cls, tmp_path / "ckpt")
    warm, warm_stats = run_policy_once(sampler_cls, tmp_path / "ckpt")

    assert disabled == no_store == cold == warm

    # the warm run actually consumed the store (every policy memoizes
    # its profile; the recorder-driven policy also restores rungs — a
    # plain SimPoint whose first warm-up window starts at icount 0 has
    # no pristine gap to checkpoint)
    assert cold_stats["profile_cache_hits"] == 0
    assert warm_stats["profile_cache_hits"] > 0
    if sampler_cls is CheckpointedSimPointSampler:
        assert cold_stats["published"] > 0
        assert warm_stats["restores"] > 0
        assert warm_stats["skipped_instructions"] > 0


def test_warm_run_skips_wall_clock_not_charges(tmp_path):
    """The cost model is warmth-invariant: identical modeled seconds
    and instruction charges, only host wall time may change."""
    cold, _ = run_policy_once(CheckpointedSimPointSampler,
                              tmp_path / "ckpt")
    warm, _ = run_policy_once(CheckpointedSimPointSampler,
                              tmp_path / "ckpt")
    for key in ("modeled_seconds", "total_instructions",
                "profile_instructions", "fast_instructions",
                "warming_instructions", "timed_instructions"):
        assert warm[key] == cold[key], key
