"""Co-simulation: the interpreter and the binary translator must agree.

The two execution engines are implemented independently; these
property-based tests generate random guest programs and assert that
both engines retire the same instruction count and reach identical
architectural state.  This is the correctness anchor of the whole VM.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import assemble
from repro.kernel import boot
from repro.vm import MODE_EVENT, MODE_FAST, MODE_INTERP, RecordingSink

_INT_OPS = ["add", "sub", "mul", "and", "or", "xor", "sll", "srl", "sra",
            "slt", "sltu", "div", "rem"]
_IMM_OPS = ["addi", "andi", "ori", "xori", "slti"]
_FP_OPS = ["fadd", "fsub", "fmul", "fdiv", "fmin", "fmax"]
_REGS = [f"t{i}" for i in range(6)]  # leave t6/t7 for infrastructure


@st.composite
def random_program(draw):
    """A random, always-terminating guest program."""
    lines = [
        "_start:",
        "    la s0, data",
        "    li t0, 3", "    li t1, -17", "    li t2, 0x7fffffff",
        "    li t3, 12345", "    li t4, -1", "    li t5, 8",
        "    fcvtif f1, t0", "    fcvtif f2, t1", "    fcvtif f3, t3",
    ]
    n_instructions = draw(st.integers(5, 60))
    label_counter = 0
    for _ in range(n_instructions):
        choice = draw(st.integers(0, 9))
        rd = draw(st.sampled_from(_REGS))
        rs1 = draw(st.sampled_from(_REGS))
        rs2 = draw(st.sampled_from(_REGS))
        if choice <= 4:
            op = draw(st.sampled_from(_INT_OPS))
            lines.append(f"    {op} {rd}, {rs1}, {rs2}")
        elif choice == 5:
            op = draw(st.sampled_from(_IMM_OPS))
            imm = draw(st.integers(-2048, 2047))
            lines.append(f"    {op} {rd}, {rs1}, {imm}")
        elif choice == 6:
            op = draw(st.sampled_from(_FP_OPS))
            fd, fa, fb = (draw(st.integers(1, 5)) for _ in range(3))
            lines.append(f"    {op} f{fd}, f{fa}, f{fb}")
        elif choice == 7:
            # aligned store+load within the data buffer
            offset = draw(st.integers(0, 31)) * 8
            lines.append(f"    sd {rs1}, {offset}(s0)")
            lines.append(f"    ld {rd}, {offset}(s0)")
        elif choice == 8:
            # forward branch over one instruction (always terminates)
            label = f"skip{label_counter}"
            label_counter += 1
            branch = draw(st.sampled_from(["beq", "bne", "blt", "bgeu"]))
            lines.append(f"    {branch} {rs1}, {rs2}, {label}")
            lines.append(f"    addi {rd}, {rd}, 1")
            lines.append(f"{label}:")
        else:
            # bounded counted loop
            label = f"loop{label_counter}"
            label_counter += 1
            count = draw(st.integers(1, 20))
            lines.append(f"    li t6, {count}")
            lines.append(f"{label}:")
            lines.append(f"    addi {rd}, {rd}, 1")
            lines.append("    addi t6, t6, -1")
            lines.append(f"    bne t6, zero, {label}")
    lines.append("    li t7, 0")
    lines.append("    li t0, 0")
    lines.append("    ecall")
    lines.append("    .align 8")
    lines.append("data:")
    lines.append("    .space 256")
    return "\n".join(lines)


def _run(source, mode, sink=None):
    system = boot(assemble(source))
    system.run_to_completion(mode=mode, sink=sink, limit=2_000_000)
    return system


def _fp_equal(a, b):
    return a == b or (a != a and b != b)  # NaN-tolerant


@settings(max_examples=60, deadline=None)
@given(random_program())
def test_translator_matches_interpreter(source):
    fast = _run(source, MODE_FAST)
    interp = _run(source, MODE_INTERP)
    assert fast.machine.state.regs == interp.machine.state.regs
    assert all(_fp_equal(a, b) for a, b in
               zip(fast.machine.state.fregs, interp.machine.state.fregs))
    assert fast.machine.state.icount == interp.machine.state.icount
    assert fast.machine.state.pc == interp.machine.state.pc


@settings(max_examples=25, deadline=None)
@given(random_program())
def test_event_mode_matches_interpreter_event_stream(source):
    sink_fast = RecordingSink()
    sink_interp = RecordingSink()
    event = _run(source, MODE_EVENT, sink_fast)
    interp = _run(source, MODE_INTERP, sink_interp)
    assert event.machine.state.regs == interp.machine.state.regs
    assert sink_fast.events == sink_interp.events


@settings(max_examples=25, deadline=None)
@given(random_program(), st.integers(1, 500))
def test_chunked_execution_matches_single_run(source, chunk):
    whole = _run(source, MODE_FAST)
    chunked = boot(assemble(source))
    while not chunked.machine.state.halted:
        chunked.run(chunk, mode=MODE_FAST)
    assert chunked.machine.state.regs == whole.machine.state.regs
    assert chunked.machine.state.icount == whole.machine.state.icount


def test_exact_chunking_matches():
    source = """
    _start:
        li t0, 0
        li t1, 5000
    loop:
        addi t0, t0, 1
        and  t2, t0, t1
        blt t0, t1, loop
        halt
    """
    whole = boot(assemble(source))
    whole.run_to_completion()
    exact = boot(assemble(source))
    while not exact.machine.state.halted:
        exact.run(97, exact=True)
    assert exact.machine.state.regs == whole.machine.state.regs
    assert exact.machine.state.icount == whole.machine.state.icount


@pytest.mark.parametrize("tlb_capacity", [2, 16, 256])
@pytest.mark.parametrize("cache_capacity", [2, 8, 512])
def test_resource_bounds_do_not_change_semantics(tlb_capacity,
                                                 cache_capacity):
    source = """
    _start:
        li t0, 0
        li t1, 4000
        la s0, data
    loop:
        addi t0, t0, 1
        sd t0, 0(s0)
        ld t2, 0(s0)
        blt t0, t1, loop
        mv t3, t2
        halt
        .align 8
    data:
        .space 64
    """
    system = boot(assemble(source), code_cache_capacity=cache_capacity,
                  tlb_capacity=tlb_capacity)
    system.run_to_completion()
    assert system.machine.state.regs[4] == 4000
