"""End-to-end CLI observability: suite --telemetry feeding status and
report, and the hot-block profile command with its exports."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def cache_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def test_suite_telemetry_then_status_and_report(cache_root, capsys):
    assert main(["suite", "--benchmarks", "gzip", "--size", "tiny",
                 "--telemetry"]) == 0
    captured = capsys.readouterr()
    assert "telemetry:" in captured.err
    assert "[start] gzip:full:tiny" in captured.err
    run_dirs = list((cache_root / "telemetry-v1").iterdir())
    assert len(run_dirs) == 1

    assert main(["status"]) == 0
    out = capsys.readouterr().out
    assert "gzip:full:tiny" in out
    assert "0 in flight, 0 stalled" in out

    assert main(["status", str(run_dirs[0]), "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)["jobs"]
    assert {row["job"] for row in rows} == {"gzip:full:tiny",
                                            "gzip:CPU-300-1M-inf:tiny"}
    assert all(row["state"] == "done" for row in rows)

    assert main(["report", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["jobs_total"] == 2
    assert report["ok"] == 2
    assert report["failed"] == 0

    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert "2 total -- 2 ok" in out
    assert "gzip:CPU-300-1M-inf:tiny" in out


def test_status_without_runs_is_a_usage_error(cache_root, capsys):
    assert main(["status"]) == 2
    assert "no telemetry runs" in capsys.readouterr().err


def test_report_on_in_flight_run_falls_back_to_status(cache_root,
                                                      capsys):
    from repro.obs.telemetry import RunTelemetry
    run = RunTelemetry(root=cache_root / "telemetry-v1",
                       run_id="run-live")
    run.write_manifest(["a"], backend="process", parallel_jobs=2)
    run.emit("queued", "a")
    assert main(["report"]) == 1
    err = capsys.readouterr().err
    assert "no run-report.json yet" in err
    assert "a" in err


def test_profile_command_outputs_and_exports(cache_root, tmp_path,
                                             capsys):
    flame = tmp_path / "fg.collapsed"
    chrome = tmp_path / "profile.json"
    assert main(["profile", "gzip", "--size", "tiny", "--top", "5",
                 "--flamegraph", str(flame),
                 "--chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "profiled" in out
    assert "block records" in out
    lines = flame.read_text().splitlines()
    assert lines and all(" " in line and line.startswith("repro;")
                         for line in lines)
    assert json.loads(chrome.read_text())["traceEvents"]
    # the profiler switch was restored: later translations unwrapped
    from repro.obs import profiling_enabled
    assert not profiling_enabled()


def test_profile_json_reports_tier_promotion(cache_root, capsys):
    assert main(["profile", "gzip", "--size", "tiny", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["blocks"] > 0
    assert payload["top_blocks"]
    tiers = {record["tier"] for record in payload["top_blocks"]}
    assert tiers <= {"fast", "event", "fused-timed", "fused-warm",
                     "megablock"}
    assert payload["promoted_pcs"], "no tier promotions attributed"
