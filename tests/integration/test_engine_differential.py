"""Deep-state differential: the three event-mode engines co-simulated.

Runs the same benchmark through an aggressive mode-interleaving
schedule (including one-instruction intervals, the hardest case for
dispatch-boundary bookkeeping) on each engine and compares the
*complete* observable state at the end: architectural registers,
icount, every pipeline ring of the out-of-order core, branch
predictor tables, every cache/TLB set and counter, the warming sink,
and the full VM statistics snapshot.

This intentionally reaches into private attributes — it is the
equivalence harness for the fast path, and any representational
drift between engines should fail loudly here.
"""

import dataclasses

import pytest

from repro.sampling import SimulationController
from repro.timing import TimingConfig
from repro.workloads import SUITE_MACHINE_KWARGS, load_benchmark

ENGINES = ("fused", "event", "interp")

#: aggressive interleaving, deliberately including 1-instruction
#: intervals and mode switches at non-block boundaries
SCHEDULE = (
    ("fast", 3000), ("warming", 700), ("timed", 900),
    ("fast", 1), ("timed", 1), ("warming", 3),
    ("profile", 500), ("timed", 2500), ("warming", 1200),
    ("fast", 7000), ("timed", 333), ("warming", 77),
    ("timed", 5000), ("fast", 8000), ("warming", 2000),
    ("timed", 4000),
)


def make(bench, engine):
    config = dataclasses.replace(TimingConfig.small(),
                                 fast_path=engine == "fused")
    controller = SimulationController(
        load_benchmark(bench, size="tiny"),
        timing_config=config,
        machine_kwargs=SUITE_MACHINE_KWARGS)
    if engine == "interp":
        controller.machine.fast_path = False  # REPRO_SLOW_PATH=1
    return controller


def rot(ring, pos):
    return tuple(ring[pos:] + ring[:pos])


def deep_state(controller):
    core = controller.core
    hierarchy = core.hierarchy
    branch = core.branch
    return {
        "regs": tuple(controller.machine.state.regs),
        "pc": controller.machine.state.pc,
        "icount": controller.machine.state.icount,
        "halted": controller.machine.state.halted,
        "reg_ready": tuple(core.reg_ready),
        "fetch": rot(core._fetch_ring, core._fetch_pos),
        "disp": rot(core._disp_ring, core._disp_pos),
        "ret": rot(core._ret_ring, core._ret_pos),
        "fq": rot(core._fq_ring, core._fq_pos),
        "rob": rot(core._rob_ring, core._rob_pos),
        "ld": rot(core._ld_ring, core._ld_pos),
        "st": rot(core._st_ring, core._st_pos),
        "fu_int": tuple(core._fu_by_class[0]),
        "fu_mem": tuple(core._fu_by_class[3]),
        "fu_fp": tuple(core._fu_by_class[7]),
        "stream": core._stream_cycle,
        "last_line": core._last_line,
        "prev_fetch": core._prev_fetch,
        "prev_dispatch": core._prev_dispatch,
        "prev_retire": core._prev_retire,
        "retired": core.retired,
        "last_retire_cycle": core.last_retire_cycle,
        "gshare": tuple(branch.gshare.table),
        "ghist": branch.gshare.history,
        "btb_tags": tuple(branch.btb.tags),
        "btb_targets": tuple(branch.btb.targets),
        "ras": (tuple(branch.ras.stack), branch.ras.top,
                branch.ras.depth),
        "branch_stats": (branch.branches, branch.mispredicts,
                         branch.btb_misses),
        "caches": tuple(
            (unit.name, tuple(map(tuple, unit.sets)),
             unit.hits, unit.misses)
            for unit in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2,
                         hierarchy.itlb, hierarchy.dtlb,
                         hierarchy.l2tlb)),
        "warming": (controller.warming_sink._last_line,
                    controller.warming_sink.instructions),
        "vm_stats": tuple(sorted(
            controller.machine.stats.snapshot().items())),
    }


def drive(controller):
    for mode, count in SCHEDULE * 2:
        if controller.finished:
            break
        getattr(controller, "run_" + mode)(count)


@pytest.mark.parametrize("bench", ("gzip", "crafty"))
@pytest.mark.parametrize("engine", ("event", "interp"))
def test_engines_bit_identical(bench, engine):
    reference = make(bench, "fused")
    drive(reference)
    expected = deep_state(reference)

    other = make(bench, engine)
    drive(other)
    actual = deep_state(other)

    mismatched = [key for key in expected if expected[key] != actual[key]]
    assert not mismatched, \
        f"fused vs {engine} diverged on {bench}: {mismatched}"
