"""Fast-path / slow-path equivalence across full sampling policies.

The hot-path engine's oracle contract: every sampling policy must make
bit-identical decisions and report bit-identical results whichever
event-mode engine executes the guest —

* ``fused``  — tier-promoted superblocks with the timing model
  compiled into the translated block (``TimingConfig.fast_path``);
* ``event``  — per-instruction sink dispatch through translated
  blocks (``fast_path=False`` in the timing config);
* ``interp`` — the per-instruction interpreter oracle, the engine
  ``REPRO_SLOW_PATH=1`` selects (``machine.fast_path = False``).

Equality is checked on IPC (exact), the full VM-stat snapshot (the
monitored CPU/EXC/IO streams Algorithm 1 thresholds against), the
mode breakdown, and the complete sampling-decision timeline captured
through the observability layer.
"""

import dataclasses

import pytest

from repro import obs
from repro.harness.experiments import policy_factory
from repro.sampling import SimulationController
from repro.timing import TimingConfig
from repro.workloads import SUITE_MACHINE_KWARGS, load_benchmark

POLICIES = ("full", "smarts", "simpoint", "simpoint-mav",
            "stratified", "rankedset",
            "CPU-300-1M-inf", "EXC-300-1M-10")

ENGINES = ("fused", "event", "interp")

_memo = {}


def run_policy_on_engine(policy_key, engine, bench="gzip"):
    """One (policy, engine) cell: result + deterministic decision log."""
    key = (policy_key, engine, bench)
    if key in _memo:
        return _memo[key]
    sink = obs.RingBufferSink(capacity=200_000)
    config = dataclasses.replace(TimingConfig.small(),
                                 fast_path=engine == "fused")
    controller = SimulationController(
        load_benchmark(bench, size="tiny"),
        timing_config=config,
        machine_kwargs=SUITE_MACHINE_KWARGS,
        tracer=obs.Tracer(sink))
    if engine == "interp":
        # the switch REPRO_SLOW_PATH=1 flips at startup: event-mode
        # execution reverts to the per-instruction interpreter oracle
        controller.machine.fast_path = False
    result = policy_factory(policy_key)().run(controller)
    decisions = [{k: v for k, v in record.items() if k != "ts"}
                 for record in obs.decision_timeline(sink.events)]
    _memo[key] = (result, decisions)
    return _memo[key]


@pytest.mark.parametrize("engine", ("event", "interp"))
@pytest.mark.parametrize("policy_key", POLICIES)
def test_policy_parity(policy_key, engine):
    fast_result, fast_decisions = run_policy_on_engine(policy_key, "fused")
    slow_result, slow_decisions = run_policy_on_engine(policy_key, engine)

    assert abs(fast_result.ipc - slow_result.ipc) < 1e-9
    assert fast_result.total_instructions == slow_result.total_instructions
    assert fast_result.timed_intervals == slow_result.timed_intervals
    for mode in ("fast", "profile", "warming", "timed"):
        attr = mode + "_instructions"
        assert getattr(fast_result, attr) == getattr(slow_result, attr), \
            f"{attr} differs on {policy_key} vs {engine}"
    # the full counter snapshot: instruction accounting per engine tier,
    # exceptions by kind, I/O operations, code-cache invalidations —
    # the monitored streams the dynamic sampler thresholds against
    assert fast_result.extra["vm_stats"] == slow_result.extra["vm_stats"]


@pytest.mark.parametrize("engine", ("event", "interp"))
@pytest.mark.parametrize("policy_key", POLICIES)
def test_decision_timeline_parity(policy_key, engine):
    # identical per-interval decisions: same icounts, same thresholds,
    # same deltas and relative changes, same fired/forced verdicts
    _, fast_decisions = run_policy_on_engine(policy_key, "fused")
    _, slow_decisions = run_policy_on_engine(policy_key, engine)
    assert fast_decisions == slow_decisions


def test_oracle_switch_changes_engine_not_results():
    # sanity: the three engines really take different execution paths
    # (fused promotes superblocks; the oracle translates nothing extra)
    fast_result, _ = run_policy_on_engine("EXC-300-1M-10", "fused")
    slow_result, _ = run_policy_on_engine("EXC-300-1M-10", "interp")
    assert fast_result.extra["vm_stats"] == slow_result.extra["vm_stats"]
    assert fast_result.ipc == pytest.approx(slow_result.ipc, abs=1e-12)
