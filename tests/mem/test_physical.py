"""Tests for demand-allocated physical memory."""

import pytest

from repro.mem import PAGE_SIZE, PhysicalMemory, PhysicalMemoryError


def test_size_must_be_page_multiple():
    with pytest.raises(PhysicalMemoryError):
        PhysicalMemory(PAGE_SIZE + 1)
    with pytest.raises(PhysicalMemoryError):
        PhysicalMemory(0)


def test_frames_allocated_on_demand():
    phys = PhysicalMemory(16 * PAGE_SIZE)
    assert phys.frames_touched == 0
    phys.frame(3)
    assert phys.frames_touched == 1
    phys.frame(3)
    assert phys.frames_touched == 1


def test_alloc_frame_is_linear_and_bounded():
    phys = PhysicalMemory(2 * PAGE_SIZE)
    assert phys.alloc_frame() == 0
    assert phys.alloc_frame() == 1
    with pytest.raises(PhysicalMemoryError):
        phys.alloc_frame()


def test_frame_out_of_range():
    phys = PhysicalMemory(2 * PAGE_SIZE)
    with pytest.raises(PhysicalMemoryError):
        phys.frame(2)
    with pytest.raises(PhysicalMemoryError):
        phys.frame(-1)


def test_read_write_within_frame():
    phys = PhysicalMemory(4 * PAGE_SIZE)
    phys.write(100, b"hello")
    assert phys.read(100, 5) == b"hello"
    assert phys.read(99, 1) == b"\x00"


def test_read_write_across_frame_boundary():
    phys = PhysicalMemory(4 * PAGE_SIZE)
    addr = PAGE_SIZE - 2
    phys.write(addr, b"abcdef")
    assert phys.read(addr, 6) == b"abcdef"
    assert phys.frames_touched == 2


def test_iter_frames_sorted():
    phys = PhysicalMemory(8 * PAGE_SIZE)
    phys.frame(5)
    phys.frame(1)
    assert [pfn for pfn, _ in phys.iter_frames()] == [1, 5]
