"""Tests for demand-allocated physical memory."""

import pytest

from repro.mem import PAGE_SIZE, PhysicalMemory, PhysicalMemoryError


def test_size_must_be_page_multiple():
    with pytest.raises(PhysicalMemoryError):
        PhysicalMemory(PAGE_SIZE + 1)
    with pytest.raises(PhysicalMemoryError):
        PhysicalMemory(0)


def test_frames_allocated_on_demand():
    phys = PhysicalMemory(16 * PAGE_SIZE)
    assert phys.frames_touched == 0
    phys.frame(3)
    assert phys.frames_touched == 1
    phys.frame(3)
    assert phys.frames_touched == 1


def test_alloc_frame_is_linear_and_bounded():
    phys = PhysicalMemory(2 * PAGE_SIZE)
    assert phys.alloc_frame() == 0
    assert phys.alloc_frame() == 1
    with pytest.raises(PhysicalMemoryError):
        phys.alloc_frame()


def test_frame_out_of_range():
    phys = PhysicalMemory(2 * PAGE_SIZE)
    with pytest.raises(PhysicalMemoryError):
        phys.frame(2)
    with pytest.raises(PhysicalMemoryError):
        phys.frame(-1)


def test_read_write_within_frame():
    phys = PhysicalMemory(4 * PAGE_SIZE)
    phys.write(100, b"hello")
    assert phys.read(100, 5) == b"hello"
    assert phys.read(99, 1) == b"\x00"


def test_read_write_across_frame_boundary():
    phys = PhysicalMemory(4 * PAGE_SIZE)
    addr = PAGE_SIZE - 2
    phys.write(addr, b"abcdef")
    assert phys.read(addr, 6) == b"abcdef"
    assert phys.frames_touched == 2


def test_iter_frames_sorted():
    phys = PhysicalMemory(8 * PAGE_SIZE)
    phys.frame(5)
    phys.frame(1)
    assert [pfn for pfn, _ in phys.iter_frames()] == [1, 5]


def test_snapshot_restore_round_trip():
    phys = PhysicalMemory(8 * PAGE_SIZE)
    phys.write(100, b"hello")
    phys.alloc_frame()
    snap = phys.snapshot()
    phys.write(100, b"HELLO")
    phys.write(3 * PAGE_SIZE, b"extra")
    phys.restore(snap)
    assert phys.read(100, 5) == b"hello"
    assert phys.snapshot() == snap


def test_restore_returns_only_changed_frames():
    phys = PhysicalMemory(8 * PAGE_SIZE)
    phys.write(0, b"aaaa")                 # frame 0
    phys.write(PAGE_SIZE, b"bbbb")         # frame 1
    snap = phys.snapshot()
    phys.write(PAGE_SIZE, b"XXXX")         # dirty frame 1 only
    phys.write(2 * PAGE_SIZE, b"cccc")     # create frame 2
    changed = phys.restore(snap)
    # frame 0 was untouched: skipped; 1 rewritten; 2 dropped
    assert changed == {1, 2}
    assert phys.read(PAGE_SIZE, 4) == b"bbbb"
    assert phys.frames_touched == 2


def test_restore_skips_identical_frames_in_place():
    phys = PhysicalMemory(4 * PAGE_SIZE)
    phys.write(0, b"data")
    backing = phys.frame(0)
    snap = phys.snapshot()
    assert phys.restore(snap) == set()
    # the untouched frame keeps its backing object (derived per-page
    # state such as translated code stays valid)
    assert phys.frame(0) is backing


def test_restored_frames_read_dirty_against_older_epoch():
    phys = PhysicalMemory(4 * PAGE_SIZE)
    phys.write(0, b"v1")
    phys.write(PAGE_SIZE, b"w1")
    snap = phys.snapshot()
    epoch = phys.begin_write_epoch()
    phys.write(0, b"v2")
    phys.restore(snap)
    # frame 0 changed during the restore: dirty relative to `epoch`
    assert phys.frame_dirty_since(0, epoch)
    # frame 1 was never written after the epoch closed: still clean
    assert not phys.frame_dirty_since(1, epoch)


def test_unknown_frames_report_dirty():
    phys = PhysicalMemory(4 * PAGE_SIZE)
    epoch = phys.begin_write_epoch()
    assert phys.frame_dirty_since(3, epoch)
