"""Tests for paging, the software TLB and the MMU."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import (MMU, PAGE_SIZE, PROT_DEVICE, PROT_R, PROT_RW,
                       PROT_RX, PROT_W, AlignmentFault, PageFault,
                       PageTable, PhysicalMemory, SoftTlb)


def make_mmu(pages=8, tlb_capacity=256):
    phys = PhysicalMemory(64 * PAGE_SIZE)
    table = PageTable()
    for vpn in range(pages):
        table.map(vpn, phys.alloc_frame(), PROT_RW | 4)  # rwx
    mmu = MMU(phys, table, tlb_capacity=tlb_capacity)
    return mmu, table, phys


# ----------------------------------------------------------------------
# page table

def test_page_table_map_lookup_unmap():
    table = PageTable()
    table.map(5, 9, PROT_RW)
    entry = table.lookup(5)
    assert entry.pfn == 9 and entry.allows(PROT_W)
    generation = table.generation
    table.unmap(5)
    assert table.lookup(5) is None
    assert table.generation == generation + 1


def test_page_table_protect():
    table = PageTable()
    table.map(1, 2, PROT_RW)
    table.protect(1, PROT_R)
    assert not table.lookup(1).allows(PROT_W)
    with pytest.raises(KeyError):
        table.protect(9, PROT_R)


def test_remap_bumps_generation():
    table = PageTable()
    table.map(1, 2, PROT_RW)
    generation = table.generation
    table.map(1, 3, PROT_RW)
    assert table.generation == generation + 1


# ----------------------------------------------------------------------
# soft TLB

def test_soft_tlb_eviction_fifo():
    tlb = SoftTlb(capacity=2)
    assert tlb.insert(10) == -1
    assert tlb.insert(11) == -1
    assert tlb.insert(12) == 10  # FIFO victim
    assert 10 not in tlb and 11 in tlb and 12 in tlb
    assert tlb.stats.misses == 3
    assert tlb.stats.evictions == 1


def test_soft_tlb_flush_and_invalidate():
    tlb = SoftTlb(capacity=4)
    tlb.insert(1)
    tlb.insert(2)
    assert tlb.invalidate(1)
    assert not tlb.invalidate(1)
    tlb.flush()
    assert len(tlb) == 0
    assert tlb.stats.flushes == 1


def test_soft_tlb_rejects_bad_capacity():
    with pytest.raises(ValueError):
        SoftTlb(capacity=0)


# ----------------------------------------------------------------------
# MMU basics

def test_read_write_roundtrip_all_sizes():
    mmu, _, _ = make_mmu()
    mmu.write_u8(0x10, 0xAB)
    mmu.write_u16(0x12, 0xBEEF)
    mmu.write_u32(0x14, 0xDEADBEEF)
    mmu.write_u64(0x18, 0x1122334455667788)
    assert mmu.read_u8(0x10) == 0xAB
    assert mmu.read_u16(0x12) == 0xBEEF
    assert mmu.read_u32(0x14) == 0xDEADBEEF
    assert mmu.read_u64(0x18) == 0x1122334455667788


def test_f64_roundtrip():
    mmu, _, _ = make_mmu()
    mmu.write_f64(0x40, 3.14159)
    assert mmu.read_f64(0x40) == pytest.approx(3.14159)


def test_misaligned_accesses_fault():
    mmu, _, _ = make_mmu()
    with pytest.raises(AlignmentFault):
        mmu.read_u16(0x11)
    with pytest.raises(AlignmentFault):
        mmu.read_u32(0x12)
    with pytest.raises(AlignmentFault):
        mmu.read_u64(0x14)
    with pytest.raises(AlignmentFault):
        mmu.write_u64(0x14, 0)
    with pytest.raises(AlignmentFault):
        mmu.fetch_word(0x2)


def test_unmapped_page_faults():
    mmu, _, _ = make_mmu(pages=2)
    with pytest.raises(PageFault) as excinfo:
        mmu.read_u64(10 * PAGE_SIZE)
    assert excinfo.value.access == "read"
    with pytest.raises(PageFault):
        mmu.write_u8(10 * PAGE_SIZE, 1)


def test_permission_violation_faults():
    phys = PhysicalMemory(8 * PAGE_SIZE)
    table = PageTable()
    table.map(0, phys.alloc_frame(), PROT_R)
    mmu = MMU(phys, table)
    assert mmu.read_u8(0) == 0
    with pytest.raises(PageFault):
        mmu.write_u8(0, 1)
    with pytest.raises(PageFault):
        mmu.fetch_word(0)


def test_fetch_word():
    mmu, _, _ = make_mmu()
    mmu.write_u32(0x100, 0x01234567)
    assert mmu.fetch_word(0x100) == 0x01234567


def test_block_read_write_across_pages():
    mmu, _, _ = make_mmu()
    data = bytes(range(200)) * 30  # 6000 bytes, crosses a page
    mmu.write_block(PAGE_SIZE - 100, data)
    assert mmu.read_block(PAGE_SIZE - 100, len(data)) == data


def test_translate():
    mmu, table, _ = make_mmu(pages=2)
    entry = table.lookup(1)
    assert mmu.translate(PAGE_SIZE + 4) == (entry.pfn * PAGE_SIZE) + 4
    with pytest.raises(PageFault):
        mmu.translate(100 * PAGE_SIZE)


# ----------------------------------------------------------------------
# TLB-bounded behaviour

def test_tlb_eviction_keeps_access_correct():
    mmu, _, _ = make_mmu(pages=8, tlb_capacity=2)
    for vpn in range(8):
        mmu.write_u64(vpn * PAGE_SIZE, vpn * 7)
    for vpn in range(8):
        assert mmu.read_u64(vpn * PAGE_SIZE) == vpn * 7
    assert mmu.tlb.stats.evictions > 0


def test_invalidate_page_forces_refill():
    mmu, table, phys = make_mmu(pages=2)
    mmu.write_u64(0, 42)
    # Remap page 0 to a fresh frame; old cached translation must die.
    table.map(0, phys.alloc_frame(), PROT_RW)
    mmu.invalidate_page(0)
    assert mmu.read_u64(0) == 0


def test_flush_clears_everything():
    mmu, _, _ = make_mmu()
    mmu.write_u64(0, 1)
    mmu.flush()
    assert len(mmu.tlb) == 0
    assert mmu.read_u64(0) == 1  # refills fine


# ----------------------------------------------------------------------
# self-modifying-code hook

def test_code_page_write_triggers_hook():
    mmu, _, _ = make_mmu()
    hits = []
    mmu.code_write_hook = lambda vpn, addr: hits.append((vpn, addr))
    mmu.write_u32(0x0, 0x11111111)      # plain data write, no hook
    mmu.register_code_page(0)
    mmu.write_u32(0x4, 0x22222222)      # write into code page
    assert hits == [(0, 0x4)]
    # After invalidation the page is data again: no second hook call.
    mmu.write_u32(0x8, 0x33333333)
    assert hits == [(0, 0x4)]


def test_device_pages_route_to_bus():
    class Bus:
        def __init__(self):
            self.reads = []
            self.writes = []

        def read(self, addr, size):
            self.reads.append((addr, size))
            return 0x5A

        def write(self, addr, size, value):
            self.writes.append((addr, size, value))

    phys = PhysicalMemory(8 * PAGE_SIZE)
    table = PageTable()
    table.map(0, 0, PROT_RW | PROT_DEVICE)
    bus = Bus()
    mmu = MMU(phys, table, bus=bus)
    assert mmu.read_u32(0x8) == 0x5A
    mmu.write_u64(0x10, 0x77)
    assert bus.reads == [(0x8, 4)]
    assert bus.writes == [(0x10, 8, 0x77)]
    # Device translations are never cached.
    mmu.read_u8(0x8)
    assert len(bus.reads) == 2


# ----------------------------------------------------------------------
# property-based: MMU behaves like a flat memory

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 8 * PAGE_SIZE - 8),
                          st.integers(0, 2**64 - 1)),
                min_size=1, max_size=50))
def test_mmu_matches_reference_model(writes):
    mmu, _, _ = make_mmu(pages=8, tlb_capacity=4)
    reference = {}
    for addr, value in writes:
        addr &= ~7  # align
        mmu.write_u64(addr, value)
        reference[addr] = value
    for addr, value in reference.items():
        assert mmu.read_u64(addr) == value
