"""Tests for the two-pass assembler and disassembler."""

import pytest

from repro.isa import (AssemblerError, Op, assemble, decode, disassemble,
                       disassemble_word)


def _words(program, count=None):
    """Return the decoded instructions of the first segment."""
    seg = program.segments[0]
    end = len(seg.data) if count is None else count * 4
    return [decode(int.from_bytes(seg.data[i:i + 4], "little"))
            for i in range(0, end, 4)]


def test_simple_program_assembles():
    program = assemble("""
        addi t0, zero, 5
        addi t1, zero, 7
        add  t2, t0, t1
        halt
    """)
    ops = [w.op for w in _words(program)]
    assert ops == [Op.ADDI, Op.ADDI, Op.ADD, Op.HALT]


def test_labels_and_branches_resolve():
    program = assemble("""
    _start:
        addi t0, zero, 0
    loop:
        addi t0, t0, 1
        blt  t0, t1, loop
        halt
    """)
    words = _words(program)
    branch = words[2]
    assert branch.op == Op.BLT
    # branch at base+8 targets base+4 -> displacement -1 word
    assert branch.imm == -1
    assert program.entry == program.segments[0].base


def test_forward_references_resolve():
    program = assemble("""
        j done
        addi t0, zero, 1
    done:
        halt
    """)
    words = _words(program)
    assert words[0].op == Op.JAL
    assert words[0].imm == 2


def test_load_store_offset_syntax():
    program = assemble("""
        ld  t0, 16(sp)
        sd  t0, -8(sp)
        lb  t1, (gp)
    """)
    words = _words(program)
    assert (words[0].op, words[0].imm, words[0].rs1) == (Op.LD, 16, 15)
    assert (words[1].op, words[1].imm) == (Op.SD, -8)
    assert (words[2].op, words[2].imm, words[2].rs1) == (Op.LB, 0, 13)


def test_li_small_medium_large():
    small = assemble("li t0, 42")
    assert [w.op for w in _words(small)] == [Op.LDI]

    medium = assemble("li t0, 0x12345678")
    words = _words(medium)
    assert [w.op for w in words] == [Op.LDI, Op.ORIS]

    large = assemble("li t0, 0x123456789abcdef0")
    words = _words(large)
    assert [w.op for w in words] == [Op.LDI, Op.ORIS, Op.ORIS, Op.ORIS]


def test_li_negative_fits_one_word():
    program = assemble("li t0, -5")
    words = _words(program)
    assert [w.op for w in words] == [Op.LDI]
    assert words[0].imm == -5


def test_la_is_always_two_words():
    program = assemble("""
        la t0, data
        halt
    data:
        .quad 99
    """)
    words = _words(program, count=3)
    assert [w.op for w in words] == [Op.LDI, Op.ORIS, Op.HALT]


def test_pseudo_instructions():
    program = assemble("""
        nop
        mv   t1, t0
        not  t2, t1
        neg  t3, t2
        snez t4, t3
        seqz t5, t4
        ret
    """)
    ops = [w.op for w in _words(program)]
    assert ops == [Op.ADDI, Op.ADDI, Op.XORI, Op.SUB, Op.SLTU,
                   Op.SLTU, Op.XORI, Op.JALR]


def test_data_directives():
    program = assemble("""
        .org 0x2000
        .byte 1, 2, 3
        .align 4
        .word 0xdeadbeef
        .quad 0x1122334455667788
        .asciiz "hi"
    """)
    seg = program.segments[0]
    assert seg.base == 0x2000
    assert seg.data[0:3] == bytes([1, 2, 3])
    assert seg.data[4:8] == (0xDEADBEEF).to_bytes(4, "little")
    assert seg.data[8:16] == (0x1122334455667788).to_bytes(8, "little")
    assert seg.data[16:19] == b"hi\x00"


def test_double_directive():
    import struct
    program = assemble(".double 2.5")
    assert program.segments[0].data == struct.pack("<d", 2.5)


def test_equ_constants():
    program = assemble("""
        .equ COUNT, 10
        addi t0, zero, COUNT
    """)
    assert _words(program)[0].imm == 10


def test_entry_directive():
    program = assemble("""
        .entry main
        nop
    main:
        halt
    """)
    assert program.entry == program.symbols["main"]


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a:\nnop\na:\nnop")


def test_undefined_symbol_rejected():
    with pytest.raises(AssemblerError):
        assemble("j nowhere")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble("frobnicate t0, t1")


def test_unknown_register_rejected():
    with pytest.raises(AssemblerError):
        assemble("add t0, t1, r99")


def test_overlapping_segments_rejected():
    with pytest.raises(AssemblerError):
        assemble("""
            .org 0x1000
            .space 16
            .org 0x1008
            .space 16
        """)


def test_fp_instructions():
    program = assemble("""
        fadd f1, f2, f3
        fsqrt f4, f5
        feq  t0, f1, f2
        fcvtif f0, t1
        fcvtfi t2, f0
        fld  f6, 8(sp)
        fsd  f6, 8(sp)
    """)
    words = _words(program)
    assert words[0].op == Op.FADD and words[0].rd == 1
    assert words[2].op == Op.FEQ and words[2].rd == 1  # t0 == r1
    assert words[3].op == Op.FCVTIF
    assert words[5].op == Op.FLD and words[5].rd == 6
    assert words[6].op == Op.FSD and words[6].rs2 == 6


def test_comments_and_blank_lines():
    program = assemble("""
        ; full line comment
        # hash comment
        nop  ; trailing
        nop  # trailing hash
    """)
    assert len(_words(program)) == 2


def test_disassemble_roundtrip():
    source = """
        addi t0, zero, 5
        ld   t1, 16(sp)
        sd   t1, -8(sp)
        beq  t0, t1, 0x1000
        jal  ra, 0x1000
        fadd f1, f2, f3
        halt
    """
    program = assemble(source, base=0x1000)
    seg = program.segments[0]
    listing = list(disassemble(bytes(seg.data), base=seg.base))
    # Re-assemble the disassembly and compare the bytes.
    text = "\n".join(line for _, line in listing)
    again = assemble(text, base=0x1000)
    assert bytes(again.segments[0].data) == bytes(seg.data)


def test_disassemble_word_handles_garbage():
    assert disassemble_word(0xFFFFFFFF).startswith(".word")
