"""Unit and property tests for instruction encode/decode."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (DecodeError, Format, Instr, OP_INFO, Op, OpClass,
                       decode, encode, is_block_terminator, sext16, sext20)


def test_every_opcode_has_info():
    for op in Op:
        info = OP_INFO[op]
        assert info.op is op
        assert info.mnemonic == op.name.lower()
        assert info.fmt in (Format.R, Format.I, Format.S, Format.B,
                            Format.J, Format.N)


def test_opcode_values_are_unique():
    values = [int(op) for op in Op]
    assert len(values) == len(set(values))


def test_sext16_boundaries():
    assert sext16(0x7FFF) == 32767
    assert sext16(0x8000) == -32768
    assert sext16(0xFFFF) == -1
    assert sext16(0) == 0


def test_sext20_boundaries():
    assert sext20(0x7FFFF) == (1 << 19) - 1
    assert sext20(0x80000) == -(1 << 19)
    assert sext20(0xFFFFF) == -1


def test_decode_rejects_illegal_opcode():
    with pytest.raises(DecodeError):
        decode(0xFF000000)


def test_encode_rejects_out_of_range_immediate():
    with pytest.raises(DecodeError):
        encode(Instr(Op.ADDI, rd=1, rs1=2, imm=1 << 20))
    with pytest.raises(DecodeError):
        encode(Instr(Op.BEQ, rs1=1, rs2=2, imm=1 << 18))


def test_r_format_roundtrip():
    instr = Instr(Op.ADD, rd=3, rs1=4, rs2=5)
    assert decode(encode(instr)) == instr


def test_i_format_negative_imm_roundtrip():
    instr = Instr(Op.ADDI, rd=1, rs1=2, imm=-42)
    assert decode(encode(instr)) == instr


def test_b_format_split_immediate_roundtrip():
    for imm in (-32768, -1, 0, 1, 4095, 4096, 32767):
        instr = Instr(Op.BNE, rs1=7, rs2=8, imm=imm)
        assert decode(encode(instr)) == instr


def test_j_format_roundtrip():
    instr = Instr(Op.JAL, rd=14, imm=-100000)
    assert decode(encode(instr)) == instr


def test_block_terminators():
    assert is_block_terminator(Op.BEQ)
    assert is_block_terminator(Op.JAL)
    assert is_block_terminator(Op.ECALL)
    assert is_block_terminator(Op.HALT)
    assert not is_block_terminator(Op.ADD)
    assert not is_block_terminator(Op.LD)


def _instr_strategy():
    ops = st.sampled_from(list(Op))

    def build(op, rd, rs1, rs2, imm16, imm20):
        fmt = OP_INFO[op].fmt
        if fmt == Format.R:
            return Instr(op, rd=rd, rs1=rs1, rs2=rs2)
        if fmt == Format.I:
            return Instr(op, rd=rd, rs1=rs1, imm=imm16)
        if fmt in (Format.S, Format.B):
            return Instr(op, rs1=rs1, rs2=rs2, imm=imm16)
        if fmt == Format.J:
            return Instr(op, rd=rd, imm=imm20)
        return Instr(op)

    return st.builds(
        build, ops,
        st.integers(0, 15), st.integers(0, 15), st.integers(0, 15),
        st.integers(-(1 << 15), (1 << 15) - 1),
        st.integers(-(1 << 19), (1 << 19) - 1))


@given(_instr_strategy())
def test_encode_decode_roundtrip(instr):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    assert decode(word) == instr


@given(st.integers(0, (1 << 32) - 1))
def test_decode_never_crashes_unexpectedly(word):
    try:
        instr = decode(word)
    except DecodeError:
        return
    # A successfully decoded word re-encodes to a word that decodes to the
    # same instruction (unused fields may differ, so compare decodes).
    assert decode(encode(instr)) == instr


def test_branch_opclass_mapping():
    assert OP_INFO[Op.BEQ].opclass is OpClass.BRANCH
    assert OP_INFO[Op.JAL].opclass is OpClass.JUMP
    assert OP_INFO[Op.LD].opclass is OpClass.LOAD
    assert OP_INFO[Op.SD].opclass is OpClass.STORE
    assert OP_INFO[Op.FDIV].opclass is OpClass.FP_DIV
    assert OP_INFO[Op.MUL].opclass is OpClass.INT_MUL
