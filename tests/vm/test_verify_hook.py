"""The REPRO_VERIFY deep-check seam at the translator/chain-linker.

Layered directly above the sanitizer: same accept/reject counter
conventions (``verify.checked`` / ``verify.rejected`` in the obs
registry), opt-in via ``REPRO_VERIFY=1``, and a hard ``VerifyError``
when a freshly generated source fails its symbolic proof.
"""

import pytest

from repro.analysis import symexec
from repro.isa import assemble
from repro.kernel import boot
from repro.obs import disable_metrics, enable_metrics
from repro.vm import translator as translator_module

LOOP = """
_start:
    li s0, 0
    li s1, 50
loop:
    addi s0, s0, 1
    blt s0, s1, loop
    halt
"""


@pytest.fixture
def verify_on(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "1")
    translator_module._CODE_CACHE.clear()
    symexec.reset_stats()
    yield
    translator_module._CODE_CACHE.clear()


def test_live_run_deep_checks_every_translation(verify_on):
    system = boot(assemble(LOOP))
    system.run_to_completion()
    stats = symexec.stats()
    assert stats["checked"] >= 2  # the li block and the loop block
    assert stats["rejected"] == 0


def test_hook_mirrors_obs_counters(verify_on):
    registry = enable_metrics()
    try:
        system = boot(assemble(LOOP))
        system.run_to_completion()
        collected = registry.collect()
        assert collected["verify.checked"] >= 2
        assert "verify.rejected" not in collected
    finally:
        disable_metrics()


def test_hook_raises_on_semantic_divergence(verify_on):
    system = boot(assemble(LOOP))
    tr = system.machine.translator
    pc = system.machine.state.pc
    instrs = tr._decode_block(pc)
    source = tr._generate(pc, instrs, "fast")
    # off-by-one in the executed-instruction count, on the live path
    mutant = source.replace("return 4", "return 5", 1)
    assert mutant != source
    with pytest.raises(symexec.VerifyError) as excinfo:
        symexec.hook_block(mutant, pc, instrs, "fast")
    assert excinfo.value.diffs
    assert symexec.stats()["rejected"] == 1


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    assert not symexec.verifier_enabled()
    assert not symexec.verifier_active()


def test_capture_seam_collects_without_checking(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    symexec.reset_stats()
    translator_module._CODE_CACHE.clear()
    with symexec.capture() as captured:
        assert symexec.verifier_active()
        system = boot(assemble(LOOP))
        system.run_to_completion()
    translator_module._CODE_CACHE.clear()
    assert captured
    assert symexec.stats()["checked"] == 0  # capture alone: no checks
    tiers = {item.tier for item in captured}
    assert "fast" in tiers
    for item in captured:
        assert item.verify() == []
