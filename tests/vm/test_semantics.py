"""Property tests for the shared arithmetic semantics.

The helpers in ``repro.vm.semantics`` define the ISA's corner cases for
both execution engines; these tests pin them against independent
references (ctypes-style two's-complement arithmetic, IEEE-754 via the
struct module).
"""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.vm.semantics import (MASK64, f2i, fdiv, fmax2, fmin2, fsqrt,
                                idiv, irem, s64, sx8, sx16, sx32)

u64 = st.integers(0, MASK64)
i64 = st.integers(-(1 << 63), (1 << 63) - 1)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


@given(u64)
def test_s64_roundtrip(value):
    signed = s64(value)
    assert -(1 << 63) <= signed < (1 << 63)
    assert signed & MASK64 == value


@given(st.integers(0, 255))
def test_sx8_matches_struct(value):
    expected = struct.unpack("<b", bytes([value]))[0]
    assert s64(sx8(value)) == expected


@given(st.integers(0, 0xFFFF))
def test_sx16_matches_struct(value):
    expected = struct.unpack("<h", value.to_bytes(2, "little"))[0]
    assert s64(sx16(value)) == expected


@given(st.integers(0, 0xFFFFFFFF))
def test_sx32_matches_struct(value):
    expected = struct.unpack("<i", value.to_bytes(4, "little"))[0]
    assert s64(sx32(value)) == expected


@given(i64, i64)
def test_idiv_matches_c_semantics(a, b):
    ua, ub = a & MASK64, b & MASK64
    if b == 0:
        assert idiv(ua, ub) == MASK64
    elif a == -(1 << 63) and b == -1:
        assert idiv(ua, ub) == 1 << 63
    else:
        expected = int(a / b)  # trunc toward zero (fine for 53-bit)...
        # use exact integer trunc division instead of float
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert s64(idiv(ua, ub)) == expected


@given(i64, i64)
def test_div_rem_identity(a, b):
    ua, ub = a & MASK64, b & MASK64
    if b == 0 or (a == -(1 << 63) and b == -1):
        return
    quotient = s64(idiv(ua, ub))
    remainder = s64(irem(ua, ub))
    assert quotient * b + remainder == a
    assert abs(remainder) < abs(b)
    if remainder:
        assert (remainder < 0) == (a < 0)


def test_irem_by_zero_returns_dividend():
    assert irem(7, 0) == 7
    assert irem(MASK64, 0) == MASK64


def test_irem_overflow_case():
    assert irem(1 << 63, MASK64) == 0  # INT64_MIN % -1


@given(finite, finite)
def test_fdiv_matches_ieee(a, b):
    result = fdiv(a, b)
    if b != 0:
        assert result == a / b or (math.isnan(result)
                                   and math.isnan(a / b))
    elif a == 0:
        assert math.isnan(result)
    else:
        assert math.isinf(result)
        assert (result > 0) == ((a > 0) == (math.copysign(1, b) > 0))


def test_fdiv_zero_by_zero_nan():
    assert math.isnan(fdiv(0.0, 0.0))
    assert math.isnan(fdiv(float("nan"), 0.0))


@given(st.floats(min_value=0, allow_nan=False, allow_infinity=False))
def test_fsqrt_matches_math(a):
    assert fsqrt(a) == math.sqrt(a)


def test_fsqrt_negative_is_nan():
    assert math.isnan(fsqrt(-1.0))


@given(finite, finite)
def test_fmin_fmax_ordering(a, b):
    low, high = fmin2(a, b), fmax2(a, b)
    assert low <= high
    assert {low, high} <= {a, b}


def test_fmin_fmax_nan_propagation():
    nan = float("nan")
    assert fmin2(nan, 2.0) == 2.0
    assert fmin2(2.0, nan) == 2.0
    assert fmax2(nan, -1.0) == -1.0
    assert math.isnan(fmin2(nan, nan))


@given(finite)
def test_f2i_saturates(a):
    result = s64(f2i(a))
    assert -(1 << 63) <= result < (1 << 63)
    if abs(a) < 2**52:
        assert result == int(a)


def test_f2i_specials():
    assert f2i(float("nan")) == 0
    assert s64(f2i(float("inf"))) == (1 << 63) - 1
    assert s64(f2i(float("-inf"))) == -(1 << 63)
    assert s64(f2i(1e300)) == (1 << 63) - 1


@given(u64, u64)
def test_idiv_irem_unsigned_domain(a, b):
    # results always stay in the unsigned 64-bit domain
    assert 0 <= idiv(a, b) <= MASK64
    assert 0 <= irem(a, b) <= MASK64
