"""SMP machine: deterministic interleaving, shared memory, parity.

The multi-core contract (see :mod:`repro.vm.smp`): the round-robin
interleaver is a pure function of the guest program and the budget
sequence, identical across the three execution engines; all harts
share one physical memory and one code-page registry (cross-core SMC
fan-out); per-core monitors attribute work to the hart that did it.
"""

import pytest

from repro.kernel import GLOBALS_BASE, boot_smp
from repro.vm.machine import MODE_EVENT
from repro.vm.smp import SmpMachine
from repro.workloads import SUITE_MACHINE_KWARGS, build_parallel

ENGINES = ("fused", "event", "interp")


class CountingSink:
    """Minimal event-mode sink: counts the instructions it is fed."""

    def __init__(self):
        self.instructions = 0

    def on_inst(self, pc, cls, dst, src1, src2, addr, taken, target):
        self.instructions += 1


def boot_bench(name, n_cores, size="tiny"):
    workload = build_parallel(name, size=size)
    return workload.boot(n_cores=n_cores, **SUITE_MACHINE_KWARGS)


def run_fingerprint(system):
    """Everything the determinism contract promises, per core."""
    system.run_to_completion()
    return [
        {"icount": core.state.icount,
         "pc": core.state.pc,
         "stats": core.stats.snapshot()}
        for core in system.machine.cores
    ]


# ----------------------------------------------------------------------
# construction and interleaving


def test_rejects_invalid_shapes():
    with pytest.raises(ValueError):
        SmpMachine(n_cores=0)
    with pytest.raises(ValueError):
        SmpMachine(n_cores=2, quantum=0)


def test_harts_share_phys_and_page_table():
    machine = SmpMachine(n_cores=3)
    for core in machine.cores[1:]:
        assert core.mmu.phys is machine.phys
        assert core.page_table is machine.page_table
    assert [core.core_id for core in machine.cores] == [0, 1, 2]


def test_rotation_starts_at_core_zero_and_interleaves():
    system = boot_bench("lockcnt", n_cores=2)
    machine = system.machine
    quantum = machine.quantum
    executed = machine.run(quantum * 2)
    # each quantum stops at the engine's block-boundary grain, so a
    # hart may overshoot its quantum by less than one max block — but
    # the budget must still be split between both harts, core 0 first
    assert executed >= quantum * 2
    icounts = [core.state.icount for core in machine.cores]
    assert quantum <= icounts[0] < quantum * 2
    assert 0 < icounts[1] < quantum * 2
    assert sum(icounts) == executed


def test_budget_is_total_across_cores():
    system = boot_bench("lockcnt", n_cores=4)
    executed = system.run(1000)
    assert executed >= 1000
    assert system.machine.total_icount == executed
    assert all(core.state.icount > 0 for core in system.machine.cores)


def test_halted_cores_are_skipped():
    system = boot_bench("pcq", n_cores=2)
    system.run_to_completion()
    assert system.machine.halted
    # a further run is a no-op, not a livelock
    assert system.run(1000) == 0


# ----------------------------------------------------------------------
# determinism and engine parity


@pytest.mark.parametrize("bench", ("pcq", "mtstencil", "lockcnt"))
def test_rerun_is_bit_identical(bench):
    first = run_fingerprint(boot_bench(bench, n_cores=2))
    second = run_fingerprint(boot_bench(bench, n_cores=2))
    assert first == second


@pytest.mark.parametrize("n_cores", (2, 4))
@pytest.mark.parametrize("bench", ("pcq", "mtstencil", "lockcnt"))
def test_event_engine_parity_per_core(bench, n_cores):
    """The translated event engine and the interpreter oracle
    (``REPRO_SLOW_PATH=1``) must retire the same per-core instruction
    streams: equal icounts, equal block_dispatches, equal monitored
    statistics.  (The fused *timing* engine is compared at the
    sampling layer, where its TimingConfig-compiled blocks exist.)"""
    results = {}
    for engine in ("event", "interp"):
        system = boot_bench(bench, n_cores=n_cores)
        if engine == "interp":
            for core in system.machine.cores:
                core.fast_path = False  # REPRO_SLOW_PATH=1 equivalent
        sinks = [CountingSink() for _ in range(n_cores)]
        system.run_to_completion(mode=MODE_EVENT, sink=sinks)
        results[engine] = [
            {"icount": core.state.icount,
             "dispatches": core.stats.block_dispatches,
             "exceptions": core.stats.exceptions,
             "io": core.stats.io_operations}
            for core in system.machine.cores]
    assert results["event"] == results["interp"]


@pytest.mark.parametrize("bench", ("pcq", "mtstencil", "lockcnt"))
def test_fast_mode_matches_event_mode_architecturally(bench):
    """MODE_FAST (superblock chaining) must agree with event mode on
    everything guest-visible: per-core icounts, final pc, exceptions,
    I/O.  (Dispatch counts legitimately differ — fusion is a host
    execution strategy, not simulated behaviour.)"""
    fast = boot_bench(bench, n_cores=2)
    fast.run_to_completion()
    event = boot_bench(bench, n_cores=2)
    event.run_to_completion(mode=MODE_EVENT,
                            sink=[CountingSink(), CountingSink()])
    for fast_core, event_core in zip(fast.machine.cores,
                                     event.machine.cores):
        assert fast_core.state.icount == event_core.state.icount
        assert fast_core.state.pc == event_core.state.pc
        assert fast_core.stats.exceptions == event_core.stats.exceptions
        assert fast_core.stats.io_operations \
            == event_core.stats.io_operations


def test_event_mode_requires_matching_sink_count():
    system = boot_bench("lockcnt", n_cores=2)
    with pytest.raises(ValueError):
        system.run(100, mode=MODE_EVENT, sink=[CountingSink()])


def test_event_sinks_see_per_core_streams():
    system = boot_bench("lockcnt", n_cores=2)
    sinks = [CountingSink(), CountingSink()]
    system.run(600, mode=MODE_EVENT, sink=sinks)
    assert sinks[0].instructions == system.machine.cores[0].state.icount
    assert sinks[1].instructions == system.machine.cores[1].state.icount


# ----------------------------------------------------------------------
# cross-core coupling


def test_shared_memory_is_visible_across_harts():
    system = boot_bench("lockcnt", n_cores=2)
    system.run_to_completion()
    # every hart read the region base core 0 published via the
    # globals page — shared-memory bootstrap succeeded on both
    base = system.machine.cores[0].mmu.read_u64(GLOBALS_BASE)
    assert base != 0
    assert system.machine.cores[1].mmu.read_u64(GLOBALS_BASE) == base


def test_code_pages_are_shared_and_writes_fan_out():
    system = boot_bench("lockcnt", n_cores=2)
    machine = system.machine
    machine.run(2000)  # both harts have translated the hot loop
    # one shared code-page registry: every MMU sees the same set
    registries = [core.mmu.code_pages for core in machine.cores]
    assert all(registry is registries[0] for registry in registries)
    assert registries[0]
    vpn = min(registries[0])
    before = [core.stats.code_cache_invalidations
              for core in machine.cores]
    machine._on_code_write(vpn, vpn << 12)
    after = [core.stats.code_cache_invalidations
             for core in machine.cores]
    # a store into translated code invalidates on *every* hart that
    # had translations of that page — both did (same hot loop)
    assert all(b > a for a, b in zip(before, after))


def test_profile_counts_merge_across_cores():
    system = boot_bench("lockcnt", n_cores=2)
    from repro.vm.machine import MODE_PROFILE
    system.run(2000, mode=MODE_PROFILE)
    counts = system.machine.take_profile_counts()
    assert counts and sum(counts.values()) > 0
    # taking drains every core
    assert system.machine.take_profile_counts() == {}
