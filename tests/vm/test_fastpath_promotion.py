"""Tiered promotion and the process-wide compiled-code cache.

The hot-path engine compiles a superblock's fused flavour only after
the block has proven hot (``fast_promote_threshold`` dispatches in the
cheap event flavour), and memoises compiled code process-wide keyed by
the translation inputs so a sweep booting many machines over the same
workload compiles each distinct block once.
"""

from repro.isa import assemble
from repro.kernel import boot
from repro.mem import PAGE_SHIFT
from repro.timing import OutOfOrderCore, TimingConfig
from repro.timing.codegen import TimedBlockCodegen
from repro.vm import MODE_EVENT, MODE_FAST
from repro.vm import translator as translator_module

LOOP_SOURCE = """
_start:
    li s0, 0
    li s1, 2000
loop:
    addi s0, s0, 1
    blt s0, s1, loop
    halt
"""


def fused_machine(threshold):
    system = boot(assemble(LOOP_SOURCE))
    machine = system.machine
    core = OutOfOrderCore(TimingConfig.small())
    machine.register_fast_sink(core, TimedBlockCodegen(core))
    machine.fast_promote_threshold = threshold
    return system, machine, core


# ----------------------------------------------------------------------
# tiered promotion


def test_cold_blocks_stay_in_event_tier_below_threshold():
    system, machine, core = fused_machine(threshold=1000)
    system.run(200, mode=MODE_EVENT, sink=core)
    _sink, _codegen, cache, counts = machine._fast_bindings[id(core)]
    assert len(cache) == 0  # nothing promoted yet
    assert counts  # dispatch counts accumulating
    assert len(machine.event_cache) > 0  # tier-0 translations exist


def test_hot_blocks_promote_past_threshold():
    system, machine, core = fused_machine(threshold=4)
    system.run(2000, mode=MODE_EVENT, sink=core)
    _sink, _codegen, cache, counts = machine._fast_bindings[id(core)]
    linker = machine._chain_linkers[id(core)]
    # the hot loop block was promoted — and once its successors
    # stabilized, handed over to the megablock tier, which evicts the
    # head's fused entry (single-lookup dispatch)
    assert len(cache) > 0 or linker.mega
    # promoted/chained blocks no longer carry a pending count
    assert all(pc not in counts for pc in cache._blocks)
    assert all(pc not in counts for pc in linker.mega)


def test_threshold_zero_promotes_immediately():
    system, machine, core = fused_machine(threshold=0)
    system.run(200, mode=MODE_EVENT, sink=core)
    _sink, _codegen, cache, counts = machine._fast_bindings[id(core)]
    assert len(cache) > 0
    assert not counts
    assert len(machine.event_cache) == 0  # tier 0 never used


def test_invalidation_drops_fused_entry_and_reexecution_recovers():
    system, machine, core = fused_machine(threshold=0)
    system.run(400, mode=MODE_EVENT, sink=core)
    _sink, _codegen, cache, _counts = machine._fast_bindings[id(core)]
    assert len(cache) > 0
    pc = next(iter(cache._blocks))
    machine.invalidate_code_page(pc >> PAGE_SHIFT)
    assert pc not in cache._blocks
    # execution continues correctly and re-promotes
    system.run(100_000, mode=MODE_EVENT, sink=core)
    assert machine.state.halted
    assert machine.state.regs[9] == 2000


# ----------------------------------------------------------------------
# process-wide compiled-code cache


def test_identical_machines_share_compiled_code(monkeypatch):
    monkeypatch.setattr(translator_module, "_CODE_CACHE", {})
    host_cache = translator_module._CODE_CACHE

    def run_one():
        system, machine, core = fused_machine(threshold=0)
        system.run(2000, mode=MODE_EVENT, sink=core)
        return machine

    run_one()
    compiled_once = len(host_cache)
    assert compiled_once > 0
    machine = run_one()
    # the second machine re-translated (fresh per-machine caches) but
    # compiled nothing new: every block was served from the host cache
    assert len(host_cache) == compiled_once
    assert machine.stats.instructions_event > 0


def test_last_source_accurate_on_cache_hits(monkeypatch):
    monkeypatch.setattr(translator_module, "_CODE_CACHE", {})
    first = boot(assemble(LOOP_SOURCE)).machine
    second = boot(assemble(LOOP_SOURCE)).machine
    pc = first.state.pc
    from repro.vm.translator import FLAVOR_EVENT
    first.translator.translate(pc, FLAVOR_EVENT, None)
    miss_source = first.translator.last_source
    second.translator.translate(pc, FLAVOR_EVENT, None)
    assert second.translator.last_source == miss_source
    assert miss_source  # non-empty generated code


def test_codegen_cache_keys_isolate_configs():
    import dataclasses
    small = TimedBlockCodegen(OutOfOrderCore(TimingConfig.small()))
    other_config = dataclasses.replace(TimingConfig.small(),
                                       issue_width=1)
    other = TimedBlockCodegen(OutOfOrderCore(other_config))
    # different core parameters -> different host-cache keys: a block
    # compiled for one configuration can never serve another
    assert small.cache_key != other.cache_key
    assert small.cache_key[0] == "fused-timed"  # flavour in the key too


def test_host_cache_capacity_clears_not_grows(monkeypatch):
    monkeypatch.setattr(translator_module, "_CODE_CACHE", {})
    monkeypatch.setattr(translator_module, "_CODE_CACHE_CAPACITY", 2)
    system = boot(assemble(LOOP_SOURCE))
    system.run_to_completion(mode=MODE_FAST)
    assert len(translator_module._CODE_CACHE) <= 2


def test_flush_code_caches_resets_pending_promotion_counts():
    # regression: flush used to drop the translations but keep the
    # tier-promotion counts, so a restored (cold) machine could promote
    # blocks using dispatch credit earned before the restore
    system, machine, core = fused_machine(threshold=1000)
    system.run(200, mode=MODE_EVENT, sink=core)
    _sink, _codegen, cache, counts = machine._fast_bindings[id(core)]
    assert counts  # credit accumulated below threshold
    machine.flush_code_caches()
    assert not counts
    assert len(cache) == 0
    assert len(machine.event_cache) == 0


def test_flush_code_caches_clears_megablock_link_state():
    # same invariant one tier up: flush must also drop the chain-entry
    # counters (pending observations), the finalized link tables and
    # the chains themselves, so a restored machine re-records from
    # scratch instead of chaining on stale successor credit
    system, machine, core = fused_machine(threshold=2)
    machine.mega_promote_threshold = 4
    system.run(2000, mode=MODE_EVENT, sink=core)
    linker = machine._chain_linkers[id(core)]
    assert linker.mega  # the hot loop chained
    generation = linker.generation[0]
    # park fresh observation credit to prove pending is cleared too
    linker.watch(0x9999)
    linker.observe(0x9999, 0x1234)
    assert linker.pending
    machine.flush_code_caches()
    assert not linker.pending   # chain-entry counters
    assert not linker.links     # finalized link tables
    assert not linker.mega      # chains
    assert not linker.page_index
    assert linker.generation[0] > generation  # running chains break
