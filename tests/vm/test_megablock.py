"""Megablock tier: chain building, dispatch parity, SMC unlinking.

The trace-linked tier above fused superblocks (``repro.vm.chain``):
hot heads record their observed successors and are re-emitted as
chained megablocks with direct-threaded exits.  The contract under
test is the equivalence contract from the module docstring — results
are bit-identical with the tier on or off (``REPRO_MEGABLOCKS=0``),
including ``block_dispatches``, the full VM-stat snapshot and the
out-of-order core's cycle count — plus the linking/unlinking
invariants: SMC and page invalidation unlink precisely the chains
whose fragments they hit, bump the generation epoch, and the head
re-earns promotion afterwards.
"""

import pytest

from repro.analysis.sanitizer import SanitizerError, sanitize_block_source
from repro.isa import assemble
from repro.kernel import boot
from repro.mem import PAGE_SHIFT
from repro.timing import OutOfOrderCore, TimingConfig
from repro.timing.codegen import TimedBlockCodegen
from repro.vm import MODE_EVENT
from repro.vm import translator as translator_module
from repro.workloads import SUITE_MACHINE_KWARGS, build_parallel

LOOP_SOURCE = """
_start:
    li s0, 0
    li s1, 2000
loop:
    addi s0, s0, 1
    blt s0, s1, loop
    halt
"""


def chained_machine(mega=True, fast_threshold=4, mega_threshold=8):
    system = boot(assemble(LOOP_SOURCE))
    machine = system.machine
    machine.megablocks = mega
    core = OutOfOrderCore(TimingConfig.small())
    machine.register_fast_sink(core, TimedBlockCodegen(core))
    machine.fast_promote_threshold = fast_threshold
    machine.mega_promote_threshold = mega_threshold
    return system, machine, core


def run_chunked(system, machine, core, chunk=500, limit=100_000):
    """Drive event mode in dispatch-loop-sized chunks to completion."""
    total = 0
    while not machine.state.halted and total < limit:
        total += system.run(chunk, mode=MODE_EVENT, sink=core)
    assert machine.state.halted, "guest did not finish"
    return total


def the_linker(machine, core):
    return machine._chain_linkers[id(core)]


def fingerprint(machine, core, total):
    return {
        "executed": total,
        "icount": machine.state.icount,
        "pc": machine.state.pc,
        "regs": list(machine.state.regs),
        "stats": machine.stats.snapshot(),
        "cycles": core.cycles,
    }


# ----------------------------------------------------------------------
# chain building and tier handover


def test_hot_loop_builds_chain():
    system, machine, core = chained_machine()
    run_chunked(system, machine, core)
    linker = the_linker(machine, core)
    assert linker.chains_built > 0
    assert linker.mega  # the loop head closed into a self-chain
    head, entry = next(iter(linker.mega.items()))
    assert entry.chained
    assert entry.pages  # page index feeds the SMC unlink path
    assert (head >> PAGE_SHIFT) in linker.page_index


def test_chain_handover_evicts_head_without_counting():
    # the head's fused entry is discarded when its chain takes over the
    # PC (single-lookup dispatch); the drop is host tiering, never an
    # architectural invalidation
    system, machine, core = chained_machine()
    before = machine.stats.code_cache_invalidations
    system.run(2000, mode=MODE_EVENT, sink=core)
    linker = the_linker(machine, core)
    assert linker.mega
    _sink, _codegen, cache, _counts = machine._fast_bindings[id(core)]
    for head in linker.mega:
        assert head not in cache._blocks
    assert machine.stats.code_cache_invalidations == before


def test_below_threshold_builds_nothing():
    system, machine, core = chained_machine(mega_threshold=10 ** 9)
    run_chunked(system, machine, core)
    linker = the_linker(machine, core)
    assert not linker.mega
    assert linker.chains_built == 0
    assert linker.pending  # observations accumulating, not ripe


# ----------------------------------------------------------------------
# bit-identical equivalence vs the tier switched off


def run_loop(mega):
    system, machine, core = chained_machine(mega=mega)
    total = run_chunked(system, machine, core)
    return fingerprint(machine, core, total), the_linker(machine, core)


def test_results_bit_identical_with_tier_off():
    with_mega, linker = run_loop(mega=True)
    without, _ = run_loop(mega=False)
    assert linker.chains_built > 0  # the comparison is not vacuous
    assert with_mega == without  # icount, pc, regs, vmstats, cycles


def test_megablocks_env_switch(monkeypatch):
    monkeypatch.setenv("REPRO_MEGABLOCKS", "0")
    assert boot(assemble("halt")).machine.megablocks is False
    monkeypatch.delenv("REPRO_MEGABLOCKS")
    assert boot(assemble("halt")).machine.megablocks is True


def test_call_threaded_fallback_bit_identical(monkeypatch):
    # force the inline-fusion strategy to fail the way a non-spliceable
    # fragment does (ValueError): the linker must fall back to call
    # threading through the compiled closures, with identical results
    monkeypatch.setattr(translator_module, "_CODE_CACHE", {})
    system, machine, core = chained_machine()

    def not_spliceable(*args, **kwargs):
        raise ValueError("fragment cannot be spliced")

    monkeypatch.setattr(machine.translator, "generate_chain",
                        not_spliceable)
    total = run_chunked(system, machine, core)
    linker = the_linker(machine, core)
    assert linker.chains_built > 0
    assert any(key[0] == "mega"
               for key in translator_module._CODE_CACHE), \
        "fallback never compiled a call-threaded chain"
    assert not any(key[0] == "mega-inline"
                   for key in translator_module._CODE_CACHE)
    threaded = fingerprint(machine, core, total)
    without, _ = run_loop(mega=False)
    assert threaded == without


# ----------------------------------------------------------------------
# SMC / invalidation unlinking


def test_page_invalidation_unlinks_and_head_rechains():
    system, machine, core = chained_machine()
    system.run(2000, mode=MODE_EVENT, sink=core)
    linker = the_linker(machine, core)
    assert linker.mega
    head = next(iter(linker.mega))
    generation = linker.generation[0]
    built = linker.chains_built
    machine.invalidate_code_page(head >> PAGE_SHIFT)
    assert head not in linker.mega
    assert linker.chains_unlinked > 0
    assert linker.generation[0] > generation  # running chains break
    # the head re-earns promotion from scratch and re-chains
    total = 2000 + run_chunked(system, machine, core)
    assert linker.chains_built > built
    assert machine.state.regs[9] == 2000
    assert machine.state.icount == total


def test_smc_unlink_is_range_precise():
    # a write into the page but outside every fragment's code range is
    # a data store sharing the page: the chain must survive it
    system, machine, core = chained_machine()
    system.run(2000, mode=MODE_EVENT, sink=core)
    linker = the_linker(machine, core)
    head = next(iter(linker.mega))
    entry = linker.mega[head]
    vpn = head >> PAGE_SHIFT
    beyond = max(pc + length * 4 for pc, length in entry.chain)
    assert linker.invalidate_address(vpn, beyond + 64) == 0
    assert head in linker.mega
    assert linker.invalidate_address(vpn, head) == 1
    assert head not in linker.mega


# ----------------------------------------------------------------------
# sanitizer: the chained-dispatch call form

CHAIN_ENV = ("state", "budget", "GuestFault", "VS", "IRQ", "GEN",
             "_chain0", "_chain1")


def chain_source(call):
    return (f"def _block(state, budget):\n"
            f"    n = {call}\n"
            f"    return n\n")


def test_sanitizer_accepts_canonical_chain_call():
    sanitize_block_source(chain_source("_chain0(state, budget)"),
                          CHAIN_ENV, "mega")
    sanitize_block_source(chain_source("_chain1(state, budget - n)"),
                          CHAIN_ENV, "mega")


@pytest.mark.parametrize("call", (
    "_chain0(budget, state)",          # wrong receiver position
    "_chain0(state)",                  # missing budget
    "_chain0(state, budget, 1)",       # extra positional
    "_chain0(state, budget=budget)",   # keyword form
))
def test_sanitizer_rejects_malformed_chain_calls(call):
    with pytest.raises(SanitizerError, match="chained dispatch"):
        sanitize_block_source(chain_source(call), CHAIN_ENV, "mega")


def test_sanitizer_rejects_unknown_chain_name():
    with pytest.raises(SanitizerError, match="unknown name"):
        sanitize_block_source(chain_source("_chain7(state, budget)"),
                              CHAIN_ENV, "mega")


# ----------------------------------------------------------------------
# cross-core SMC on a 2-core SmpMachine


def run_smp_smc(mega, head=None):
    """Chain on both harts, write into chained code mid-run, finish.

    Returns (per-core fingerprints, linkers, head) — the write lands
    at the same deterministic instruction boundary whichever way the
    tier is switched, so the runs are directly comparable.  The
    ``mega`` run discovers its hottest chained head; the comparison
    run receives the same ``head`` so both write the same address.
    """
    system = build_parallel("lockcnt", size="tiny").boot(
        n_cores=2, **SUITE_MACHINE_KWARGS)
    machine = system.machine
    machine.megablocks = mega
    sinks = []
    for core in machine.cores:
        sink = OutOfOrderCore(TimingConfig.small())
        core.register_fast_sink(sink, TimedBlockCodegen(sink))
        core.fast_promote_threshold = 2
        sinks.append(sink)
    machine.mega_promote_threshold = 4
    system.run(6000, mode=MODE_EVENT, sink=sinks)
    linkers = [core._chain_linkers[id(sink)]
               for core, sink in zip(machine.cores, sinks)]
    if head is None:
        assert any(linker.mega for linker in linkers), "no chains built"
        head = next(iter(next(lk for lk in linkers if lk.mega).mega))
    generations = [linker.generation[0] for linker in linkers]
    # a store into translated code fans out to every hart
    machine._on_code_write(head >> PAGE_SHIFT, head)
    for linker, generation in zip(linkers, generations):
        assert head not in linker.mega  # unlinked everywhere
        if mega:
            assert linker.generation[0] >= generation
    while not machine.halted:
        if system.run(4000, mode=MODE_EVENT, sink=sinks) == 0:
            break
    assert machine.halted
    prints = [{"icount": core.state.icount,
               "pc": core.state.pc,
               "stats": core.stats.snapshot()}
              for core in machine.cores]
    return prints, linkers, head


def test_smp_mid_chain_smc_unlinks_and_stays_bit_identical():
    with_mega, linkers, head = run_smp_smc(mega=True)
    without, _, _ = run_smp_smc(mega=False, head=head)
    assert with_mega == without  # per-core icount, pc, full vmstats
    # the write unlinked a live chain somewhere, and execution after
    # the unlink re-translated and re-chained (lockcnt keeps looping)
    assert sum(lk.chains_unlinked for lk in linkers) > 0
    assert sum(lk.chains_built for lk in linkers) \
        > sum(lk.chains_unlinked for lk in linkers) - 1
