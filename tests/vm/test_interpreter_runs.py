"""Interpreter superblock dispatch (the slow-path oracle's fast loop).

``Interpreter.step_run`` dispatches straight-line decoded runs as a
unit.  Runs must share dispatch boundaries with the translator's
superblocks — that is what makes per-run bookkeeping
(``block_dispatches``) bit-identical between the interpreter oracle
(``REPRO_SLOW_PATH=1``) and the translated engines.
"""

import pytest

from repro.isa import assemble
from repro.kernel import boot
from repro.mem import PAGE_SHIFT
from repro.mem.faults import PageFault
from repro.vm.interpreter import Interpreter

STRAIGHT_LINE = "_start:\n" + \
    "\n".join(f"    addi t1, t1, {i}" for i in range(10)) + \
    "\n    halt"


def fresh(source):
    system = boot(assemble(source))
    return system.machine


def test_machine_interpreter_shares_translator_block_cap():
    machine = fresh(STRAIGHT_LINE)
    assert machine.interpreter.max_run == machine.translator.max_block


def test_run_boundaries_match_translator_blocks():
    machine = fresh("""
    _start:
        li s0, 0
        li s1, 10
    loop:
        addi s0, s0, 1
        addi t1, t1, 2
        blt s0, s1, loop
        halt
    """)
    interp = machine.interpreter
    pc = machine.state.pc
    # same decode boundaries as the translator's superblocks, block
    # by block along the program's control flow
    for _ in range(4):
        run = interp._decode_run(pc)
        block = machine.translator._decode_block(pc)
        assert len(run) == len(block)
        assert [i.op for i in run] == [i.op for i in block]
        executed = interp.step_run()
        assert executed == len(run)
        pc = machine.state.pc


def test_max_run_override_caps_dispatch():
    machine = fresh(STRAIGHT_LINE)
    interp = Interpreter(machine.state, machine.mmu, max_run=4)
    assert interp.step_run() == 4
    assert interp._last_run_len == 4


def test_budget_clamps_but_run_length_is_recorded():
    machine = fresh(STRAIGHT_LINE)
    interp = machine.interpreter
    executed = interp.step_run(budget=3)
    assert executed == 3
    # the dispatched run was longer than the budget: the machine uses
    # this to tell an exact-clamped tail from a completed dispatch
    assert interp._last_run_len == 11  # 10 addi + halt
    assert machine.state.icount == 3


def test_step_run_counts_icount_and_halts():
    machine = fresh(STRAIGHT_LINE)
    executed = machine.interpreter.step_run()
    assert executed == 11
    assert machine.state.icount == 11
    assert machine.state.halted


def test_notice_code_write_flushes_only_decoded_pages():
    machine = fresh(STRAIGHT_LINE)
    interp = machine.interpreter
    interp._decode_run(machine.state.pc)
    assert interp._runs or interp._decoded
    vpn = machine.state.pc >> PAGE_SHIFT
    gen = interp._gen
    interp.notice_code_write(vpn + 100)  # unrelated page: no flush
    assert interp._gen == gen
    interp.notice_code_write(vpn)  # decoded page: full flush
    assert interp._gen == gen + 1
    assert not interp._runs and not interp._decoded and not interp._pages


def test_fault_mid_run_reports_progress():
    machine = fresh("""
    _start:
        addi t1, zero, 1
        addi t2, zero, 2
        li t0, 0x70000000
        sd t1, 0(t0)
        addi t3, zero, 3
        halt
    """)
    interp = machine.interpreter
    before = machine.state.icount
    with pytest.raises(PageFault):
        interp.step_run()
    progress = interp.consume_progress()
    assert progress > 0  # the instructions before the faulting store
    assert machine.state.icount == before + progress
    assert interp.consume_progress() == 0  # one-shot
