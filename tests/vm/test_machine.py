"""Machine-level behaviour: modes, faults, statistics, SMC."""

import pytest

from repro.isa import assemble
from repro.kernel import boot
from repro.mem import PAGE_SIZE
from repro.vm import (MODE_EVENT, MODE_FAST, MODE_PROFILE, Machine,
                      MachineError, NullSink, RecordingSink)


def test_unknown_mode_rejected():
    system = boot(assemble("halt"))
    with pytest.raises(ValueError):
        system.run(10, mode="warp")


def test_event_mode_requires_sink():
    system = boot(assemble("halt"))
    with pytest.raises(ValueError):
        system.run(10, mode=MODE_EVENT)


def test_zero_budget_is_noop():
    system = boot(assemble("halt"))
    assert system.run(0) == 0


def test_ecall_without_kernel_raises():
    machine = Machine()
    from repro.mem import PROT_RWX
    machine.page_table.map(1, machine.phys.alloc_frame(), PROT_RWX)
    program = assemble("ecall")
    machine.mmu.write_block(0x1000, bytes(program.segments[0].data))
    machine.state.reset(pc=0x1000)
    with pytest.raises(MachineError):
        machine.run(10)


def test_demand_paged_heap_faults_then_maps():
    source = """
    _start:
        li t7, 3        ; SYS_BRK
        li t0, 0
        ecall           ; query brk
        mv t1, t0
        addi t0, t0, 0x4000
        li t7, 3
        ecall           ; grow heap by 4 pages
        ; touch two new pages -> two demand faults
        sd t1, 0(t1)
        li t2, 0x2000
        add t3, t1, t2
        sd t3, 0(t3)
        li t7, 0
        li t0, 0
        ecall
    """
    system = boot(assemble(source))
    system.run_to_completion()
    kinds = system.machine.stats.exception_kinds
    assert kinds.get("page_fault", 0) == 2
    assert kinds.get("syscall", 0) == 3


def test_stack_demand_paging():
    source = """
    _start:
        sd sp, -8(sp)      ; first touch of the stack page
        li t7, 0
        li t0, 0
        ecall
    """
    system = boot(assemble(source))
    system.run_to_completion()
    assert system.machine.stats.exception_kinds.get("page_fault", 0) == 1


def test_unmapped_access_crashes():
    source = """
    _start:
        li t0, 0x10000000
        ld t1, 0(t0)
        halt
    """
    system = boot(assemble(source))
    with pytest.raises(MachineError):
        system.run_to_completion()
    # the fault was still counted as a guest exception
    assert system.machine.stats.exception_kinds.get("page_fault", 0) == 1


def test_misaligned_access_crashes():
    source = """
    _start:
        la t0, word
        ld t1, 1(t0)
        halt
        .align 8
    word:
        .quad 1
    """
    system = boot(assemble(source))
    with pytest.raises(MachineError):
        system.run_to_completion()


def test_self_modifying_code_invalidates_and_reexecutes():
    # The program overwrites the instruction at `patch` (li t2, 1 ->
    # encoded word for li t2, 2) and re-executes it.
    patched = assemble("ldi t2, 2").segments[0].data[:4]
    word = int.from_bytes(patched, "little")
    source = f"""
    _start:
        jal ra, run_patch      ; execute original
        mv t3, t2              ; t3 = 1
        la t0, patch
        li t1, {word}
        sw t1, 0(t0)           ; overwrite the instruction
        jal ra, run_patch      ; execute patched
        mv t4, t2              ; t4 = 2
        li t7, 0
        li t0, 0
        ecall
    run_patch:
    patch:
        ldi t2, 1
        ret
    """
    system = boot(assemble(source))
    system.run_to_completion()
    regs = system.machine.state.regs
    assert regs[4] == 1
    assert regs[5] == 2
    assert system.machine.stats.code_cache_invalidations > 0


def test_code_cache_capacity_evictions_counted():
    # More blocks than cache capacity -> FIFO evictions.
    chunks = []
    for i in range(40):
        chunks.append(f"b{i}:\n    addi t0, t0, 1\n    jal zero, b{i + 1}")
    chunks.append("b40:\n    halt")
    source = "_start:\n" + "\n".join(chunks)
    system = boot(assemble(source), code_cache_capacity=8)
    system.run_to_completion()
    stats = system.machine.stats
    assert stats.translations >= 40
    assert stats.code_cache_invalidations >= 30


def test_profile_mode_collects_block_counts():
    source = """
    _start:
        li t0, 0
        li t1, 500
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        halt
    """
    system = boot(assemble(source))
    system.run_to_completion(mode=MODE_PROFILE)
    counts = system.machine.profile_counts
    assert sum(counts.values()) == system.machine.state.icount
    # the loop block dominates
    assert max(counts.values()) >= 2 * 500 - 10


def test_profile_and_fast_mode_agree():
    source = """
    _start:
        li t0, 0
        li t1, 2000
    loop:
        addi t0, t0, 3
        blt t0, t1, loop
        halt
    """
    fast = boot(assemble(source))
    fast.run_to_completion(mode=MODE_FAST)
    prof = boot(assemble(source))
    prof.run_to_completion(mode=MODE_PROFILE)
    assert fast.machine.state.regs == prof.machine.state.regs
    assert fast.machine.state.icount == prof.machine.state.icount


def test_per_mode_instruction_accounting():
    source = """
    _start:
        li t0, 0
        li t1, 100000
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        halt
    """
    system = boot(assemble(source))
    system.run(1000, mode=MODE_FAST)
    system.run(1000, mode=MODE_EVENT, sink=NullSink())
    system.run(1000, mode=MODE_PROFILE)
    stats = system.machine.stats
    assert stats.instructions_fast >= 1000
    assert stats.instructions_event >= 1000
    assert stats.instructions_profile >= 1000
    assert stats.instructions_total == system.machine.state.icount


def test_mode_switching_preserves_architectural_state():
    source = """
    _start:
        li t0, 0
        li t1, 30000
    loop:
        addi t0, t0, 1
        and  t2, t0, t1
        blt t0, t1, loop
        mv t3, t0
        halt
    """
    reference = boot(assemble(source))
    reference.run_to_completion()

    switching = boot(assemble(source))
    sink = NullSink()
    mode_cycle = [MODE_FAST, MODE_EVENT, MODE_PROFILE]
    index = 0
    while not switching.machine.state.halted:
        mode = mode_cycle[index % 3]
        switching.run(777, mode=mode,
                      sink=sink if mode == MODE_EVENT else None)
        index += 1
    assert (switching.machine.state.regs
            == reference.machine.state.regs)
    assert (switching.machine.state.icount
            == reference.machine.state.icount)


def test_interrupt_delivery():
    source = """
    _start:
        li t0, 0
        li t1, 100000
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        halt
    """
    system = boot(assemble(source))
    system.run(100)
    system.machine.post_interrupt(1)
    system.run(100)
    assert system.kernel.timer_fired == 1
    assert system.machine.stats.exception_kinds.get("interrupt") == 1


def test_snapshot_restore_state():
    system = boot(assemble("li t0, 7\nhalt"))
    system.run_to_completion()
    snap = system.machine.state.snapshot()
    system.machine.state.reset()
    assert system.machine.state.regs[1] == 0
    system.machine.state.restore(snap)
    assert system.machine.state.regs[1] == 7
    assert system.machine.state.halted


def test_exception_counter_is_the_exc_signal():
    source = """
    _start:
        li t7, 9      ; SYS_YIELD
        ecall
        ecall
        ecall
        li t7, 0
        li t0, 0
        ecall
    """
    system = boot(assemble(source))
    system.run_to_completion()
    stats = system.machine.stats
    assert stats.monitored("EXC") == stats.exceptions == 4


def test_monitored_statistics_names():
    system = boot(assemble("halt"))
    stats = system.machine.stats
    assert stats.monitored("CPU") == stats.code_cache_invalidations
    assert stats.monitored("IO") == stats.io_operations
    with pytest.raises(KeyError):
        stats.monitored("BOGUS")


def test_flush_policy_evicts_everything_at_capacity():
    chunks = []
    for i in range(30):
        chunks.append(f"b{i}:\n    addi t0, t0, 1\n    jal zero, b{i + 1}")
    chunks.append("b30:\n    halt")
    source = "_start:\n" + "\n".join(chunks)
    fifo = boot(assemble(source), code_cache_capacity=8)
    fifo.run_to_completion()
    flush = boot(assemble(source), code_cache_capacity=8,
                 code_cache_policy="flush")
    flush.run_to_completion()
    # same architectural outcome...
    assert (flush.machine.state.regs[1]
            == fifo.machine.state.regs[1])
    # ...but the flush policy drops blocks in bursts
    assert flush.machine.fast_cache.flushes == 0  # capacity, not flush()
    assert flush.machine.stats.code_cache_invalidations \
        >= fifo.machine.stats.code_cache_invalidations


def test_unknown_cache_policy_rejected():
    from repro.vm import CodeCache
    with pytest.raises(ValueError):
        CodeCache(8, policy="lru")
