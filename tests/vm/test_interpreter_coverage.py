"""Direct interpreter coverage: every opcode through MODE_INTERP.

Co-simulation tests already compare the interpreter against the
translator statistically; these pin specific architectural corner cases
on the interpreter path directly.
"""

import math

import pytest

from repro.isa import assemble
from repro.kernel import boot
from repro.vm import MODE_INTERP


def run(body, fregs=False):
    source = f"_start:\n{body}\n    halt\n"
    system = boot(assemble(source))
    system.run_to_completion(mode=MODE_INTERP)
    state = system.machine.state
    return state.fregs if fregs else state.regs


def test_mulh_signed_high_bits():
    regs = run("""
        li t0, -1
        li t1, -1
        mulh t2, t0, t1     ; (-1 * -1) >> 64 == 0
        li t3, 1
        slli t3, t3, 62
        mulh t4, t3, t3     ; 2^124 >> 64 == 2^60
    """)
    assert regs[3] == 0
    assert regs[5] == 1 << 60


def test_oris_builds_constants():
    regs = run("""
        ldi t0, 0x12
        oris t0, t0, 0x3456
        oris t0, t0, 0x789a
    """)
    assert regs[1] == 0x1234_5678_9A


def test_sll_uses_low_six_bits():
    regs = run("""
        li t0, 1
        li t1, 65          ; shift amount wraps to 1
        sll t2, t0, t1
        srl t3, t2, t1
    """)
    assert regs[3] == 2
    assert regs[4] == 1


def test_jalr_clears_low_bits():
    regs = run("""
        la t0, target
        addi t0, t0, 2     ; misalign the pointer
        jalr ra, t0, 1     ; (t0 + 1) & ~3 lands on target
        nop
    target:
        li t2, 55
    """)
    assert regs[3] == 55


def test_fmin_fmax_and_nan():
    fregs = run("""
        li t0, 3
        li t1, 7
        fcvtif f1, t0
        fcvtif f2, t1
        fmin f3, f1, f2
        fmax f4, f1, f2
        li t2, 0
        fcvtif f5, t2
        fdiv f6, f5, f5    ; 0/0 = NaN
        fmin f7, f6, f2    ; NaN propagates the other operand
    """, fregs=True)
    assert fregs[3] == 3.0
    assert fregs[4] == 7.0
    assert math.isnan(fregs[6])
    assert fregs[7] == 7.0


def test_fcvtfi_saturation_and_nan():
    regs = run("""
        li t0, 1
        fcvtif f1, t0
        li t1, 0
        fcvtif f2, t1
        fdiv f3, f1, f2    ; +inf
        fcvtfi t2, f3      ; saturates to INT64_MAX
        fdiv f4, f2, f2    ; NaN
        fcvtfi t3, f4      ; 0
        fneg f5, f3
        fcvtfi t4, f5      ; INT64_MIN
    """)
    assert regs[3] == (1 << 63) - 1
    assert regs[4] == 0
    assert regs[5] == 1 << 63


def test_byte_and_half_stores():
    regs = run("""
        la t0, buf
        li t1, 0x1122334455667788
        sb t1, 0(t0)
        sh t1, 2(t0)
        sw t1, 4(t0)
        ld t2, 0(t0)
        j skip
        .align 8
    buf:
        .quad 0
    skip:
        nop
    """)
    # careful: buf layout -> byte 0x88 at +0, half 0x7788 at +2,
    # word 0x55667788 at +4
    assert regs[3] == 0x5566778877880088


def test_branch_all_conditions():
    regs = run("""
        li t0, -1
        li t1, 1
        li t6, 0
        bge t1, t0, a      ; signed: 1 >= -1 taken
        j done
    a:
        addi t6, t6, 1
        bgeu t0, t1, b     ; unsigned: ffff.. >= 1 taken
        j done
    b:
        addi t6, t6, 1
        blt t0, t1, c      ; signed taken
        j done
    c:
        addi t6, t6, 1
        bltu t1, t0, d     ; unsigned taken
        j done
    d:
        addi t6, t6, 1
    done:
        nop
    """)
    assert regs[7] == 4


def test_rdcycle_reads_virtual_clock():
    source = "_start:\n    rdcycle t5\n    halt\n"
    system = boot(assemble(source))
    system.machine.state.cycles = 777
    system.run_to_completion(mode=MODE_INTERP)
    assert system.machine.state.regs[6] == 777


def test_interp_mode_accounts_instructions():
    source = "_start:\n    nop\n    nop\n    halt\n"
    system = boot(assemble(source))
    system.run_to_completion(mode=MODE_INTERP)
    assert system.machine.stats.instructions_interp == 3
    assert system.machine.stats.instructions_fast == 0


def test_ebreak_halts_via_kernel():
    system = boot(assemble("_start:\n    ebreak\n    nop"))
    system.run_to_completion(mode=MODE_INTERP)
    assert system.machine.state.halted
    assert system.exit_code == 0xB
