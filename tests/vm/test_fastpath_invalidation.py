"""Superblock invalidation parity: fast path vs the slow-path oracle.

Self-modifying code and wholesale code-page invalidation must bump the
CPU-monitored vmstat (code-cache invalidations — the "CPU" stream
Algorithm 1 thresholds against) *identically* whichever event-mode
engine executes the guest:

* ``fused``  — tier-promoted superblocks (``register_fast_sink``);
* ``event``  — per-instruction sink dispatch over translated blocks;
* ``interp`` — the per-instruction interpreter oracle, what
  ``REPRO_SLOW_PATH=1`` selects (``machine.fast_path = False``).

Only the architectural fast cache feeds the monitored statistic; the
event/fused caches are host state.  The drives below interleave fast
and event modes the way the sampling controller does, so the fast
cache is populated and its invalidations are observable.
"""

import pytest

from repro.isa import assemble
from repro.kernel import boot
from repro.mem import PAGE_SHIFT
from repro.timing import OutOfOrderCore, TimingConfig
from repro.timing.codegen import TimedBlockCodegen
from repro.vm import MODE_EVENT, MODE_FAST

ENGINES = ("fused", "event", "interp")


def _patch_word(text):
    return int.from_bytes(assemble(text).segments[0].data[:4], "little")


#: patches the instruction at ``patch`` (in a *different* block than
#: the store) back and forth between ``ldi t2, 1`` and ``ldi t2, 2``,
#: re-executing it after every write; t2 values accumulate in s2
SMC_SOURCE = f"""
_start:
    li s0, 0
    li s1, 6
    li s2, 0
loop:
    jal ra, run_patch
    add s2, s2, t2
    la t0, patch
    la t4, alt
    lw t1, 0(t0)
    lw t5, 0(t4)
    sw t5, 0(t0)
    sw t1, 0(t4)
    addi s0, s0, 1
    blt s0, s1, loop
    mv t3, s2
    li t7, 0
    li t0, 0
    ecall
run_patch:
patch:
    ldi t2, 1
    ret
alt:
    .quad {_patch_word("ldi t2, 2")}
"""


def drive_mixed(source, engine, chunk=300, **boot_kwargs):
    """Alternate fast and event mode to completion, like the controller.

    Returns ``(system, core)`` after the guest exits.
    """
    system = boot(assemble(source), **boot_kwargs)
    machine = system.machine
    core = OutOfOrderCore(TimingConfig.small())
    if engine == "fused":
        machine.register_fast_sink(core, TimedBlockCodegen(core))
        machine.fast_promote_threshold = 0  # superblocks from dispatch 1
    elif engine == "interp":
        machine.fast_path = False  # what REPRO_SLOW_PATH=1 sets
    for _ in range(10_000):
        if machine.state.halted:
            break
        system.run(chunk, mode=MODE_FAST)
        if machine.state.halted:
            break
        system.run(chunk, mode=MODE_EVENT, sink=core)
    assert machine.state.halted, "guest did not finish"
    return system, core


@pytest.mark.parametrize("engine", ENGINES)
def test_smc_reexecutes_patched_code(engine):
    system, _ = drive_mixed(SMC_SOURCE, engine)
    # t2 alternates 1, 2, 1, 2, 1, 2 across the six patch rounds
    assert system.machine.state.regs[4] == 9
    assert system.machine.stats.monitored("CPU") > 0


def test_smc_invalidations_identical_across_engines():
    snapshots = {}
    for engine in ENGINES:
        system, _ = drive_mixed(SMC_SOURCE, engine)
        snapshots[engine] = system.machine.stats.snapshot()
    assert snapshots["fused"] == snapshots["event"]
    assert snapshots["fused"] == snapshots["interp"]
    assert snapshots["fused"]["code_cache_invalidations"] > 0


def test_capacity_evictions_identical_across_engines():
    # more hot blocks than the architectural cache holds: evictions
    # count as invalidations and must not depend on the engine
    chunks = []
    for i in range(40):
        chunks.append(f"b{i}:\n    addi t0, t0, 1\n    jal zero, b{i + 1}")
    chunks.append("b40:\n    li t7, 0\n    li t0, 0\n    ecall")
    source = "_start:\n" + "\n".join(chunks)
    counts = {}
    for engine in ENGINES:
        system, _ = drive_mixed(source, engine, chunk=20,
                                code_cache_capacity=8)
        counts[engine] = system.machine.stats.snapshot()
    assert counts["fused"] == counts["event"] == counts["interp"]
    assert counts["fused"]["code_cache_invalidations"] > 0


def test_slow_path_env_switch(monkeypatch):
    monkeypatch.setenv("REPRO_SLOW_PATH", "1")
    assert boot(assemble("halt")).machine.fast_path is False
    monkeypatch.delenv("REPRO_SLOW_PATH")
    assert boot(assemble("halt")).machine.fast_path is True
    monkeypatch.setenv("REPRO_SLOW_PATH", "0")
    assert boot(assemble("halt")).machine.fast_path is True


@pytest.mark.parametrize("engine", ENGINES)
def test_explicit_code_page_invalidation(engine):
    # wholesale invalidation (munmap / checkpoint restore): dropping a
    # populated code page counts once per resident translation and the
    # re-run re-translates; identical across engines
    source = """
    _start:
        li s0, 0
        li s1, 400
    loop:
        addi s0, s0, 1
        blt s0, s1, loop
        li t7, 0
        li t0, 0
        ecall
    """
    system = boot(assemble(source))
    machine = system.machine
    core = OutOfOrderCore(TimingConfig.small())
    if engine == "fused":
        machine.register_fast_sink(core, TimedBlockCodegen(core))
        machine.fast_promote_threshold = 0
    elif engine == "interp":
        machine.fast_path = False
    system.run(200, mode=MODE_FAST)
    system.run(200, mode=MODE_EVENT, sink=core)
    before = machine.stats.code_cache_invalidations
    machine.invalidate_code_page(machine.state.pc >> PAGE_SHIFT)
    bumped = machine.stats.code_cache_invalidations - before
    assert bumped > 0
    system.run(10_000, mode=MODE_EVENT, sink=core)
    assert machine.state.halted
    assert machine.state.regs[9] == 400
