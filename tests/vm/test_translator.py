"""Tests for the binary translator and translated-block semantics."""

import pytest

from repro.isa import assemble
from repro.kernel import boot
from repro.vm import MODE_EVENT, MODE_FAST, RecordingSink
from repro.isa.instructions import OpClass


def run_fragment(body, max_instructions=1_000_000, mode=MODE_FAST,
                 sink=None):
    """Boot a tiny program and run it to completion."""
    source = f"_start:\n{body}\n    li t7, 0\n    li t0, 0\n    ecall\n"
    system = boot(assemble(source))
    system.run_to_completion(mode=mode, sink=sink, limit=max_instructions)
    return system


def test_arithmetic_block():
    system = run_fragment("""
        li t0, 10
        li t1, 3
        add t2, t0, t1
        sub t3, t0, t1
        mul t4, t0, t1
        div t5, t0, t1
        rem t6, t0, t1
    """)
    regs = system.machine.state.regs
    assert regs[3] == 13
    assert regs[4] == 7
    assert regs[5] == 30
    assert regs[6] == 3
    assert regs[7] == 1


def test_unsigned_wraparound():
    system = run_fragment("""
        li t0, -1           ; 0xffff...ffff
        addi t1, t0, 1      ; wraps to 0
        li t2, -5
        sltu t3, t0, t2     ; unsigned: ffff... < fffb...? no
        slt  t4, t2, t0     ; signed: -5 < -1? yes
    """)
    regs = system.machine.state.regs
    assert regs[2] == 0
    assert regs[4] == 0
    assert regs[5] == 1


def test_shifts():
    system = run_fragment("""
        li t0, 1
        slli t1, t0, 63
        srli t2, t1, 63
        srai t3, t1, 63     ; arithmetic: sign fills
    """)
    regs = system.machine.state.regs
    assert regs[2] == 1 << 63
    assert regs[3] == 1
    assert regs[4] == (1 << 64) - 1


def test_division_corner_cases():
    system = run_fragment("""
        li t0, 7
        li t1, 0
        div t2, t0, t1      ; div by zero -> all ones
        rem t3, t0, t1      ; rem by zero -> dividend
        li t4, 1
        slli t4, t4, 63     ; INT64_MIN
        li t5, -1
        div t6, t4, t5      ; overflow -> INT64_MIN
    """)
    regs = system.machine.state.regs
    assert regs[3] == (1 << 64) - 1
    assert regs[4] == 7
    assert regs[7] == 1 << 63


def test_memory_roundtrip():
    system = run_fragment("""
        la  t0, buffer
        li  t1, 0x1122334455667788
        sd  t1, 0(t0)
        ld  t2, 0(t0)
        lw  t3, 0(t0)       ; sign-extended low word
        lwu t4, 0(t0)
        lb  t5, 7(t0)       ; 0x11
        j   end
        .align 8
    buffer:
        .quad 0
    end:
    """)
    regs = system.machine.state.regs
    assert regs[3] == 0x1122334455667788
    assert regs[4] == 0x55667788
    assert regs[5] == 0x55667788
    assert regs[6] == 0x11


def test_signed_load_extension():
    system = run_fragment("""
        la  t0, data
        lb  t1, 0(t0)
        lbu t2, 0(t0)
        lh  t3, 0(t0)
        lhu t4, 0(t0)
        j end
        .align 8
    data:
        .quad 0xffffffffffffffff
    end:
    """)
    regs = system.machine.state.regs
    assert regs[2] == (1 << 64) - 1  # lb sign-extends
    assert regs[3] == 0xFF
    assert regs[4] == (1 << 64) - 1
    assert regs[5] == 0xFFFF


def test_fp_arithmetic():
    system = run_fragment("""
        la  t0, values
        fld f1, 0(t0)
        fld f2, 8(t0)
        fadd f3, f1, f2
        fmul f4, f1, f2
        fdiv f5, f1, f2
        fsqrt f6, f2
        flt t1, f2, f1
        fcvtfi t2, f3
        j end
        .align 8
    values:
        .double 6.0
        .double 4.0
    end:
    """)
    state = system.machine.state
    assert state.fregs[3] == pytest.approx(10.0)
    assert state.fregs[4] == pytest.approx(24.0)
    assert state.fregs[5] == pytest.approx(1.5)
    assert state.fregs[6] == pytest.approx(2.0)
    assert state.regs[2] == 1
    assert state.regs[3] == 10


def test_fcvtif():
    system = run_fragment("""
        li t0, -7
        fcvtif f1, t0
        fneg f2, f1
        fcvtfi t1, f2
    """)
    state = system.machine.state
    assert state.fregs[1] == -7.0
    assert state.regs[2] == 7


def test_loop_chaining_runs_whole_loop_in_one_dispatch():
    system = run_fragment("""
        li t0, 0
        li t1, 50000
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        mv t2, t0
    """)
    assert system.machine.state.regs[3] == 50000
    # The loop body must not have been dispatched 50000 times.
    assert system.machine.stats.block_dispatches < 100


def test_budget_respected_by_loop_blocks():
    source = """
    _start:
        li t0, 0
        li t1, 1000000
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        halt
    """
    system = boot(assemble(source))
    executed = system.run(1000, mode=MODE_FAST)
    # Bounded overshoot: at most one block length beyond the budget.
    assert 1000 <= executed <= 1000 + 32
    assert not system.machine.state.halted


def test_exact_run_is_exact():
    source = """
    _start:
        li t0, 0
        li t1, 1000000
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        halt
    """
    system = boot(assemble(source))
    executed = system.run(12345, exact=True)
    assert executed == 12345
    assert system.machine.state.icount == 12345


def test_jal_jalr_link():
    system = run_fragment("""
        call func
        j end
    func:
        li t2, 99
        ret
    end:
        nop
    """)
    assert system.machine.state.regs[3] == 99


def test_zero_register_immutable():
    system = run_fragment("""
        li t0, 5
        add zero, t0, t0
        addi zero, zero, 9
        mv t1, zero
    """)
    assert system.machine.state.regs[0] == 0
    assert system.machine.state.regs[2] == 0


def test_rdinstr_counts_retired_instructions():
    system = run_fragment("""
        nop
        nop
        rdinstr t6
    """)
    # the two nops retire before rdinstr reads the counter
    assert system.machine.state.regs[7] == 2


def test_event_mode_matches_fast_mode_architecturally():
    body = """
        li t0, 0
        li t1, 3000
    loop:
        addi t0, t0, 1
        and  t2, t0, t1
        blt t0, t1, loop
    """
    fast = run_fragment(body, mode=MODE_FAST)
    sink = RecordingSink(limit=10)
    event = run_fragment(body, mode=MODE_EVENT, sink=sink)
    assert fast.machine.state.regs == event.machine.state.regs
    assert fast.machine.state.icount == event.machine.state.icount
    assert len(sink.events) == 10  # events were produced


def test_event_stream_contents():
    source = """
    _start:
        li t0, 7
        la t1, buf
        sd t0, 0(t1)
        beq t0, t0, skip
        nop
    skip:
        halt
        .align 8
    buf:
        .quad 0
    """
    system = boot(assemble(source))
    sink = RecordingSink()
    system.run_to_completion(mode=MODE_EVENT, sink=sink)
    classes = [event[1] for event in sink.events]
    # li(1) la(2) sd(1) beq(1) halt(1) = 6 events
    assert len(classes) == 6
    store = sink.events[3]
    assert store[1] == int(OpClass.STORE)
    assert store[5] > 0  # effective address reported
    branch = sink.events[4]
    assert branch[1] == int(OpClass.BRANCH)
    assert branch[6] == 1  # taken
    # target == the halt instruction address
    assert branch[7] == sink.events[5][0]


def test_generated_source_is_stashed():
    system = run_fragment("nop")
    assert "def _block" in system.machine.translator.last_source
