"""Tests for the kernels, DSL and the synthetic SPEC suite."""

import pytest

from repro.workloads import (KERNELS, SPEC2000, SUITE_MACHINE_KWARGS,
                             SUITE_ORDER, WorkloadBuilder, benchmark_names,
                             build_benchmark, get_spec, load_benchmark)
from repro.workloads.spec2000 import SCALE, plan_phase


def run_workload(workload):
    system = workload.boot(**SUITE_MACHINE_KWARGS)
    system.run_to_completion(limit=50_000_000)
    assert system.machine.state.halted, "workload did not terminate"
    assert system.exit_code == 0
    return system


# ----------------------------------------------------------------------
# kernels

@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_each_kernel_runs_and_terminates(kernel):
    builder = WorkloadBuilder(f"unit-{kernel}")
    builder.phase(kernel)
    system = run_workload(builder.build())
    assert system.machine.state.icount > 0


def test_kernel_estimates_are_reasonable():
    """Estimated instruction counts within 2x of reality."""
    builder = WorkloadBuilder("estimates")
    for kernel in ("stream", "stencil", "pointer_chase", "branchy",
                   "crc", "string_scan", "gather"):
        builder.phase(kernel)
    workload = builder.build()
    system = run_workload(workload)
    actual = system.machine.state.icount
    estimate = workload.estimated_instructions
    assert 0.5 < actual / estimate < 2.0


def test_io_kernels_touch_devices():
    builder = WorkloadBuilder("io")
    builder.phase("console_io", nbytes=32)
    builder.phase("disk_io", nsect=2, reps=2)
    builder.phase("net_io", packet=64, reps=2)
    system = run_workload(builder.build())
    assert len(system.console.output) == 32
    assert system.disk.sectors_transferred >= 4
    assert system.nic.packets_sent == 2
    assert system.machine.stats.io_operations >= 7


def test_unknown_kernel_rejected():
    builder = WorkloadBuilder("bad")
    with pytest.raises(KeyError):
        builder.phase("frobnicate")


def test_empty_workload_rejected():
    with pytest.raises(ValueError):
        WorkloadBuilder("empty").build()


def test_code_copies_inflates_code_footprint():
    plain = WorkloadBuilder("p")
    plain.phase("crc", iters=1000)
    fat = WorkloadBuilder("f")
    fat.phase("crc", iters=1000, code_copies=8)
    plain_loops = [s for s in plain.build().program.symbols
                   if s.endswith("_loop")]
    fat_loops = [s for s in fat.build().program.symbols
                 if s.endswith("_loop")]
    assert len(plain_loops) == 1
    assert len(fat_loops) == 8


def test_plan_phase_hits_target():
    for kernel in ("stream", "branchy", "pointer_chase", "matmul",
                   "sort", "calls", "stencil", "gather", "crc",
                   "string_scan"):
        builder = WorkloadBuilder(f"plan-{kernel}")
        plan_phase(builder, kernel, 50_000)
        system = run_workload(builder.build())
        actual = system.machine.state.icount
        assert 15_000 < actual < 150_000, (kernel, actual)


# ----------------------------------------------------------------------
# the SPEC suite

def test_suite_has_26_benchmarks():
    assert len(SUITE_ORDER) == 26
    assert SUITE_ORDER[0] == "gzip"
    assert "perlbmk" in SUITE_ORDER
    assert "apsi" in SUITE_ORDER


def test_table2_metadata_matches_paper():
    spec = get_spec("parser")
    assert spec.paper_billions == 240
    assert spec.ref_input == "ref.in"
    spec = get_spec("wupwise")
    assert spec.paper_simpoints == 28
    spec = get_spec("sixtrack")
    assert spec.paper_simpoints == 235


def test_workload_is_deterministic():
    first = build_benchmark(get_spec("gzip"), size="tiny")
    second = build_benchmark(get_spec("gzip"), size="tiny")
    assert first.program.flatten() == second.program.flatten()
    system_a = run_workload(first)
    system_b = run_workload(second)
    assert (system_a.machine.state.icount
            == system_b.machine.state.icount)
    assert (system_a.machine.stats.snapshot()
            == system_b.machine.stats.snapshot())


def test_load_benchmark_memoises():
    a = load_benchmark("vpr", size="tiny")
    b = load_benchmark("vpr", size="tiny")
    assert a is b
    c = load_benchmark("vpr", size="tiny", use_cache=False)
    assert c is not a


@pytest.mark.parametrize("name", ["gzip", "mcf", "perlbmk", "swim",
                                  "art", "sixtrack"])
def test_representative_benchmarks_run_at_tiny(name):
    workload = load_benchmark(name, size="tiny")
    system = run_workload(workload)
    target = get_spec(name).target_instructions("tiny")
    actual = system.machine.state.icount
    assert 0.4 * target < actual < 3.0 * target


def test_scale_ordering():
    tiny = get_spec("mcf").target_instructions("tiny")
    small = get_spec("mcf").target_instructions("small")
    paper = get_spec("mcf").target_instructions("paper")
    assert tiny < small < paper
    assert SCALE["paper"] // SCALE["tiny"] > 10


def test_monitored_signals_present():
    """Each benchmark must produce EXC activity; most produce CPU."""
    workload = load_benchmark("gzip", size="tiny")
    system = run_workload(workload)
    stats = system.machine.stats
    assert stats.monitored("EXC") > 10
    assert stats.monitored("CPU") > 0
    assert stats.monitored("IO") > 0


def test_spec_table_complete():
    for name, spec in SPEC2000.items():
        assert spec.paper_billions > 0
        assert spec.paper_simpoints > 0
        assert spec.rounds >= 3
        assert spec.segments, name
