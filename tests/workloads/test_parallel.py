"""Functional correctness of the multi-threaded workloads.

Each parallel benchmark computes a closed-form-checkable result in
shared memory; these tests read it back after the run and verify it at
1, 2 and 4 harts (N=1 exercises the solo fallback paths).
"""

import pytest

from repro.kernel import GLOBALS_BASE, boot_smp
from repro.workloads import (DEFAULT_PARALLEL_CORES, SUITE_MACHINE_KWARGS,
                             build_parallel, default_benchmark_cores,
                             is_parallel_benchmark, load_benchmark,
                             parallel_benchmark_names)
from repro.workloads.parallel import PARALLEL_ROUNDS

CORE_COUNTS = (1, 2, 4)


def run_bench(name, n_cores, size="tiny"):
    workload = build_parallel(name, size=size)
    system = workload.boot(n_cores=n_cores, **SUITE_MACHINE_KWARGS)
    system.run_to_completion()
    assert system.machine.halted
    return system


def region_base(system):
    base = system.machine.cores[0].mmu.read_u64(GLOBALS_BASE)
    assert base != 0
    return base


@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_pcq_sums_every_item_exactly_once(n_cores):
    workload = build_parallel("pcq", size="tiny")
    n_items = int(workload.ref_input.split("x")[0])
    system = run_bench("pcq", n_cores)
    base = region_base(system)
    mmu = system.machine.cores[0].mmu
    results_base = base + n_items * 16
    total = sum(mmu.read_u64(results_base + core * 8)
                for core in range(max(n_cores, 1)))
    # round r produces values (1+r)..(n_items+r): each item consumed
    # exactly once, no value lost or double-counted
    expected = sum(n_items * (n_items + 1) // 2 + n_items * r
                   for r in range(PARALLEL_ROUNDS))
    assert total == expected


@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_lockcnt_counter_is_exact(n_cores):
    workload = build_parallel("lockcnt", size="tiny")
    increments = int(workload.ref_input.split("x")[0])
    system = run_bench("lockcnt", n_cores)
    base = region_base(system)
    counter = system.machine.cores[0].mmu.read_u64(base + 8)
    # the spinlock admits exactly one hart per increment: no lost
    # updates under contention
    assert counter == increments * PARALLEL_ROUNDS * n_cores
    # the lock is released at the end
    assert system.machine.cores[0].mmu.read_u64(base) == 0


@pytest.mark.parametrize("n_cores", CORE_COUNTS)
def test_mtstencil_completes_deterministically(n_cores):
    first = run_bench("mtstencil", n_cores)
    second = run_bench("mtstencil", n_cores)
    icounts = [core.state.icount for core in first.machine.cores]
    assert icounts == [core.state.icount
                       for core in second.machine.cores]
    assert all(icount > 0 for icount in icounts)


def test_mtstencil_result_is_core_count_invariant():
    """The stencil is data-parallel: the converged array must not
    depend on how many harts computed it."""
    workload = build_parallel("mtstencil", size="tiny")
    n = int(workload.ref_input.split("x")[0])

    def final_array(n_cores):
        system = run_bench("mtstencil", n_cores)
        base = region_base(system)
        mmu = system.machine.cores[0].mmu
        # an odd number of total sweeps may leave the result in either
        # ping-pong array; read both and compare the pair
        one = tuple(mmu.read_u64(base + i * 8) for i in range(n))
        two = tuple(mmu.read_u64(base + (n + i) * 8) for i in range(n))
        return one, two

    assert final_array(1) == final_array(2) == final_array(4)


# ----------------------------------------------------------------------
# suite integration


def test_parallel_names_are_registered():
    names = parallel_benchmark_names()
    assert set(names) == {"pcq", "mtstencil", "lockcnt"}
    for name in names:
        assert is_parallel_benchmark(name)
        assert default_benchmark_cores(name) == DEFAULT_PARALLEL_CORES
    assert not is_parallel_benchmark("gzip")
    assert default_benchmark_cores("gzip") == 1


def test_load_benchmark_serves_parallel_suite():
    workload = load_benchmark("pcq", size="tiny")
    assert workload.parallel
    assert workload.n_cores == DEFAULT_PARALLEL_CORES
    # memoised like the SPEC suite
    assert load_benchmark("pcq", size="tiny") is workload


def test_parallel_boot_defaults_to_smp():
    from repro.kernel.system import SmpSystem
    workload = load_benchmark("lockcnt", size="tiny")
    system = workload.boot(**SUITE_MACHINE_KWARGS)
    assert isinstance(system, SmpSystem)
    assert system.machine.n_cores == DEFAULT_PARALLEL_CORES
    # sequential workloads keep the single-core boot path
    plain = load_benchmark("gzip", size="tiny").boot(
        **SUITE_MACHINE_KWARGS)
    assert not isinstance(plain, SmpSystem)
