"""Engine tests: cache/resume semantics, incremental persistence,
progress reporting, and per-job trace capture."""

from pathlib import Path

import pytest

from repro.exec import (ExperimentEngine, JobSpec, ResultStore,
                        SerialBackend, failed_jobs,
                        format_failure_summary, merge_job_events)
from repro.harness import make_spec
from repro.sampling import PolicyResult


def _fake_result(spec):
    return PolicyResult(
        policy=spec.policy, benchmark=spec.benchmark, ipc=2.0,
        total_instructions=10, fast_instructions=0,
        profile_instructions=0, warming_instructions=0,
        timed_instructions=10, timed_intervals=1,
        wall_seconds=0.0, modeled_seconds=1.0,
        fingerprint=spec.fingerprint)


class CountingWorker:
    """In-process worker that records which jobs actually ran."""

    def __init__(self, fail_keys=()):
        self.executed = []
        self.fail_keys = set(fail_keys)

    def __call__(self, spec, tracer=None):
        self.executed.append(spec.key)
        if spec.key in self.fail_keys:
            raise RuntimeError("injected failure")
        return _fake_result(spec)


def _engine(tmp_path, worker, **kwargs):
    return ExperimentEngine(store=ResultStore(tmp_path / "v2"),
                            backend=SerialBackend(worker=worker),
                            **kwargs)


def _specs(n):
    return [JobSpec(benchmark=f"b{i}", policy="full", size="tiny",
                    fingerprint="f") for i in range(n)]


def test_engine_persists_and_resumes(tmp_path):
    specs = _specs(3)
    worker = CountingWorker()
    outcomes = _engine(tmp_path, worker).run(specs)
    assert all(jr.ok for jr in outcomes.values())
    assert len(worker.executed) == 3

    # a "re-invoked sweep" (fresh engine over the same store) only
    # runs the missing cell
    worker2 = CountingWorker()
    outcomes2 = _engine(tmp_path, worker2).run(_specs(4))
    assert len(outcomes2) == 4
    assert worker2.executed == [_specs(4)[3].key]
    assert sum(jr.cached for jr in outcomes2.values()) == 3


def test_failed_cells_rerun_on_next_invocation(tmp_path):
    specs = _specs(3)
    worker = CountingWorker(fail_keys={specs[1].key})
    outcomes = _engine(tmp_path, worker).run(specs)
    failures = failed_jobs(outcomes)
    assert [jr.spec.key for jr in failures] == [specs[1].key]
    assert "injected failure" in format_failure_summary(failures)

    # the failure was not persisted: a retry sweep re-runs exactly it
    worker2 = CountingWorker()
    outcomes2 = _engine(tmp_path, worker2).run(specs)
    assert worker2.executed == [specs[1].key]
    assert not failed_jobs(outcomes2)


def test_interrupted_sweep_keeps_completed_cells(tmp_path):
    """Jobs persist as they finish — a KeyboardInterrupt mid-sweep
    loses only the unfinished cells."""
    specs = _specs(3)

    def interrupting_worker(spec, tracer=None):
        if spec.key == specs[2].key:
            raise KeyboardInterrupt
        return _fake_result(spec)

    engine = _engine(tmp_path, interrupting_worker)
    with pytest.raises(KeyboardInterrupt):
        engine.run(specs)

    worker = CountingWorker()
    _engine(tmp_path, worker).run(specs)
    assert worker.executed == [specs[2].key]


def test_use_cache_false_neither_reads_nor_writes(tmp_path):
    specs = _specs(1)
    worker = CountingWorker()
    engine = _engine(tmp_path, worker)
    engine.run(specs)
    engine.run(specs, use_cache=False)
    assert len(worker.executed) == 2  # both calls simulated
    assert engine.store.get(specs[0].key).ipc == 2.0


def test_force_reruns_but_still_persists(tmp_path):
    specs = _specs(1)
    worker = CountingWorker()
    engine = _engine(tmp_path, worker)
    engine.run(specs)
    engine.run(specs, force=True)
    assert len(worker.executed) == 2
    assert engine.store.get(specs[0].key) is not None


def test_progress_callback_counts_cached_and_fresh(tmp_path):
    specs = _specs(2)
    seen = []
    worker = CountingWorker()
    engine = ExperimentEngine(
        store=ResultStore(tmp_path / "v2"),
        backend=SerialBackend(worker=worker),
        progress=lambda jr, done, total: seen.append(
            (jr.spec.key, jr.cached, done, total)))
    engine.run(specs)
    engine.run(specs)
    assert len(seen) == 4
    assert [entry[1] for entry in seen] == [False, False, True, True]
    assert all(entry[3] == 2 for entry in seen)


def test_run_deduplicates_specs(tmp_path):
    spec = _specs(1)[0]
    worker = CountingWorker()
    outcomes = _engine(tmp_path, worker).run([spec, spec, spec])
    assert len(outcomes) == 1
    assert len(worker.executed) == 1


def test_run_grid_maps_aliases(tmp_path):
    worker = CountingWorker()
    engine = _engine(tmp_path, worker)
    grid = engine.run_grid(["gzip"], ["simpoint", "simpoint+prof"],
                           size="tiny")
    assert len(worker.executed) == 1  # one underlying job
    assert grid[("gzip", "simpoint")].result is \
        grid[("gzip", "simpoint+prof")].result


def test_trace_dir_produces_tagged_mergeable_events(tmp_path):
    """The obs integration: parallel-safe per-job traces that merge
    into one coherent stream, every event tagged with its job id."""
    specs = [make_spec("gzip", "full", "tiny"),
             make_spec("gzip", "EXC-300-1M-10", "tiny")]
    engine = ExperimentEngine(store=ResultStore(tmp_path / "v2"),
                              jobs=2, trace_dir=tmp_path / "traces")
    outcomes = engine.run(specs)
    assert all(jr.ok for jr in outcomes.values())
    files = sorted((tmp_path / "traces").glob("*.jsonl"))
    assert len(files) == 2
    events = merge_job_events(tmp_path / "traces")
    assert events
    tags = {event.payload.get("job") for event in events}
    assert tags == {"gzip:full:tiny", "gzip:EXC-300-1M-10:tiny"}
    # traced results are fresh simulations and are not written back
    assert ResultStore(tmp_path / "v2").get(specs[0].key) is None


def test_tracer_factory_forces_serial_and_fresh(tmp_path):
    specs = _specs(2)
    worker = CountingWorker()
    tracers = []

    class FakeTracer:
        pass

    def factory(spec):
        tracer = FakeTracer()
        tracers.append(tracer)
        return tracer

    engine = ExperimentEngine(store=ResultStore(tmp_path / "v2"),
                              backend=SerialBackend(worker=worker),
                              tracer_factory=factory)
    engine.run(specs)
    engine.run(specs)  # traced: never cached, always re-runs
    assert len(worker.executed) == 4
    assert len(tracers) == 4


def test_merge_job_events_deterministic_under_timestamp_ties(tmp_path):
    """Interleaved traces with colliding timestamps merge in a fully
    deterministic order: ts, then job tag, then per-file sequence —
    the tiebreak chain never falls through to comparing event objects
    (which would TypeError) and never depends on dict/filesystem
    order."""
    from repro.obs import TraceEvent, write_jsonl

    def event(ts, job, seq):
        return TraceEvent(type="decision.sample", ts=ts, icount=seq,
                          payload={"job": job, "seq": seq})

    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    # every timestamp collides across the two jobs; within a file the
    # events are deliberately NOT ts-sorted (stable sort must not
    # reorder equal keys by accident)
    write_jsonl([event(1.0, "jobB", 0), event(1.0, "jobB", 1),
                 event(2.0, "jobB", 2)], trace_dir / "b.jsonl")
    write_jsonl([event(1.0, "jobA", 0), event(2.0, "jobA", 1),
                 event(1.0, "jobA", 2)], trace_dir / "a.jsonl")

    merged = merge_job_events(trace_dir)
    order = [(e.ts, e.payload["job"], e.payload["seq"])
             for e in merged]
    assert order == [(1.0, "jobA", 0), (1.0, "jobA", 2),
                     (1.0, "jobB", 0), (1.0, "jobB", 1),
                     (2.0, "jobA", 1), (2.0, "jobB", 2)]
    # bit-for-bit stable across repeated merges
    assert order == [(e.ts, e.payload["job"], e.payload["seq"])
                     for e in merge_job_events(trace_dir)]


def test_merge_job_events_orders_per_core_streams(tmp_path):
    """Per-core event streams with identical (ts, job) merge in core
    order — core-less controller events first, then core 0, 1, ... —
    regardless of emission or file order."""
    from repro.obs import TraceEvent, write_jsonl

    def event(ts, job, core=None, seq=0):
        payload = {"job": job, "seq": seq}
        if core is not None:
            payload["core"] = core
        return TraceEvent(type="decision.sample", ts=ts, icount=seq,
                          payload=payload)

    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    # one 2-core job whose per-core decisions share a timestamp, with
    # cores deliberately emitted out of order, plus a tied core-less
    # controller event
    write_jsonl([event(1.0, "pcq:full:tiny:c2", core=1, seq=0),
                 event(1.0, "pcq:full:tiny:c2", core=0, seq=1),
                 event(1.0, "pcq:full:tiny:c2", seq=2),
                 event(1.0, "pcq:full:tiny:c2", core=1, seq=3)],
                trace_dir / "pcq.jsonl")

    merged = merge_job_events(trace_dir)
    order = [(e.payload.get("core"), e.payload["seq"]) for e in merged]
    assert order == [(None, 2), (0, 1), (1, 0), (1, 3)]
    assert order == [(e.payload.get("core"), e.payload["seq"])
                     for e in merge_job_events(trace_dir)]
