"""Tests for the sharded result store: atomicity, locking, migration,
and concurrent-writer integrity."""

import json
import multiprocessing
import os

import pytest

from repro.exec import FileLock, ResultStore, default_cache_root
from repro.exec.store import MIGRATION_MARKER
from repro.sampling import PolicyResult


def make_result(policy="p", benchmark="b", ipc=1.0):
    return PolicyResult(
        policy=policy, benchmark=benchmark, ipc=ipc,
        total_instructions=1000, fast_instructions=0,
        profile_instructions=0, warming_instructions=0,
        timed_instructions=1000, timed_intervals=1,
        wall_seconds=1.0, modeled_seconds=1.0)


def test_default_cache_root_resolved_lazily(tmp_path, monkeypatch):
    # satellite regression: REPRO_CACHE_DIR set *after* import must win
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    repo_default = default_cache_root()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert default_cache_root() == tmp_path
    assert default_cache_root() != repo_default


def test_store_shards_per_benchmark(tmp_path):
    store = ResultStore(tmp_path / "v2")
    store.put("gzip|full|tiny|f", make_result("full", "gzip"))
    store.put("mcf|full|tiny|f", make_result("full", "mcf"))
    store.put("gzip|smarts|tiny|f", make_result("smarts", "gzip"))
    assert sorted(p.name for p in (tmp_path / "v2").glob("*.json")) == \
        ["gzip.json", "mcf.json"]
    gzip_shard = json.loads((tmp_path / "v2" / "gzip.json").read_text())
    assert set(gzip_shard) == {"gzip|full|tiny|f", "gzip|smarts|tiny|f"}
    assert list(store.keys()) == sorted(
        ["gzip|full|tiny|f", "gzip|smarts|tiny|f", "mcf|full|tiny|f"])


def test_store_leaves_no_tmp_files(tmp_path):
    store = ResultStore(tmp_path / "v2")
    for index in range(5):
        store.put(f"gzip|p{index}|tiny|f", make_result(f"p{index}"))
    assert not list((tmp_path / "v2").glob("*.tmp"))


def test_file_lock_is_exclusive(tmp_path):
    lock_path = tmp_path / "x.lock"
    with FileLock(lock_path):
        with pytest.raises(TimeoutError):
            with FileLock(lock_path, timeout=0.1):
                pass
    # released: can take it again
    with FileLock(lock_path, timeout=0.1):
        pass


def test_migration_imports_v1(tmp_path):
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    v1 = {
        "gzip|full|small": make_result("full", "gzip", ipc=1.5).to_dict(),
        "mcf|full|small": make_result("full", "mcf", ipc=0.7).to_dict(),
        "not-a-valid-key": {"junk": True},
    }
    (cache_dir / "results-v1.json").write_text(json.dumps(v1))
    store = ResultStore(cache_dir / "results-v2")
    from repro.exec import default_fingerprint
    key = f"gzip|full|small|{default_fingerprint()}"
    loaded = store.get(key)  # first access triggers the migration
    assert loaded is not None and loaded.ipc == 1.5
    assert store.get(f"mcf|full|small|{default_fingerprint()}").ipc == 0.7
    assert (cache_dir / "results-v2" / MIGRATION_MARKER).exists()
    # one-shot: wiping v1 afterwards loses nothing, and a new record
    # does not re-trigger an import
    again = ResultStore(cache_dir / "results-v2")
    assert again.get(key).ipc == 1.5


def test_migration_skipped_when_v2_exists(tmp_path):
    cache_dir = tmp_path / "cache"
    store = ResultStore(cache_dir / "results-v2")
    store.put("gzip|full|tiny|f", make_result("full", "gzip"))
    (cache_dir / "results-v1.json").write_text(
        json.dumps({"gzip|smarts|small":
                    make_result("smarts", "gzip").to_dict()}))
    fresh = ResultStore(cache_dir / "results-v2")
    assert fresh.get("gzip|full|tiny|f") is not None
    from repro.exec import default_fingerprint
    assert fresh.get(
        f"gzip|smarts|small|{default_fingerprint()}") is None


def _writer(root, worker_id, count):
    store = ResultStore(root)
    for index in range(count):
        store.put(f"gzip|w{worker_id}-{index}|tiny|f",
                  make_result(f"w{worker_id}-{index}", "gzip"))


def test_concurrent_writers_do_not_clobber(tmp_path):
    """Several processes hammering the same shard must all land."""
    root = tmp_path / "v2"
    workers, per_worker = 4, 8
    ctx = multiprocessing.get_context("fork")
    procs = [ctx.Process(target=_writer, args=(root, w, per_worker))
             for w in range(workers)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(60)
        assert proc.exitcode == 0
    data = json.loads((root / "gzip.json").read_text())
    assert len(data) == workers * per_worker


def test_store_refresh_sees_other_writers(tmp_path):
    a = ResultStore(tmp_path / "v2")
    b = ResultStore(tmp_path / "v2")
    assert a.get("gzip|full|tiny|f") is None  # caches the empty shard
    b.put("gzip|full|tiny|f", make_result("full", "gzip"))
    a.refresh()
    assert a.get("gzip|full|tiny|f") is not None
