"""Tests for JobSpec / config fingerprints."""

import pytest

from repro.exec import (JobSpec, config_fingerprint,
                        default_fingerprint)
from repro.harness import make_spec, normalize_policy
from repro.timing import TimingConfig


def test_fingerprint_stable():
    a = config_fingerprint(TimingConfig.small(), {"x": 1})
    b = config_fingerprint(TimingConfig.small(), {"x": 1})
    assert a == b
    assert len(a) == 12


def test_fingerprint_tracks_timing_config():
    small = config_fingerprint(TimingConfig.small(), {})
    paper = config_fingerprint(TimingConfig.opteron_like(), {})
    assert small != paper


def test_fingerprint_tracks_machine_kwargs():
    base = config_fingerprint(TimingConfig.small(),
                              {"code_cache_capacity": 40})
    changed = config_fingerprint(TimingConfig.small(),
                                 {"code_cache_capacity": 41})
    assert base != changed


def test_default_fingerprint_in_spec_key():
    spec = make_spec("gzip", "full", "tiny")
    assert spec.fingerprint == default_fingerprint()
    assert spec.key == f"gzip|full|tiny|{spec.fingerprint}"
    assert spec.job_id == "gzip:full:tiny"


def test_make_spec_normalises_aliases():
    assert normalize_policy("simpoint+prof") == "simpoint"
    a = make_spec("gzip", "simpoint", "tiny")
    b = make_spec("gzip", "simpoint+prof", "tiny")
    assert a.key == b.key  # the alias shares the underlying job


def test_make_spec_rejects_unknown_policy():
    with pytest.raises(KeyError):
        make_spec("gzip", "bogus-policy", "tiny")


def test_spec_roundtrip_and_key_excludes_events_path():
    spec = JobSpec(benchmark="gzip", policy="full", size="tiny",
                   fingerprint="abc", events_path="/tmp/x.jsonl")
    clone = JobSpec.from_dict(spec.to_dict())
    assert clone == spec
    bare = JobSpec(benchmark="gzip", policy="full", size="tiny",
                   fingerprint="abc")
    assert spec.key == bare.key
