"""Engine telemetry: lifecycle events (start/retry included), queue
waits, the end-of-run report, and the store-resume interplay."""

import json

from repro.exec import (ExperimentEngine, ExecutionBackend, JobResult,
                        JobSpec, ResultStore, SerialBackend,
                        format_failure_summary)
from repro.obs import telemetry
from repro.sampling import PolicyResult


def _fake_result(spec, wall_by_mode=None):
    result = PolicyResult(
        policy=spec.policy, benchmark=spec.benchmark, ipc=2.0,
        total_instructions=10, fast_instructions=0,
        profile_instructions=0, warming_instructions=0,
        timed_instructions=10, timed_intervals=1,
        wall_seconds=0.0, modeled_seconds=1.0,
        fingerprint=spec.fingerprint)
    if wall_by_mode is not None:
        result.extra["wall_seconds_by_mode"] = wall_by_mode
    return result


def _specs(n):
    return [JobSpec(benchmark=f"b{i}", policy="full", size="tiny",
                    fingerprint="f") for i in range(n)]


def _engine(tmp_path, **kwargs):
    kwargs.setdefault("backend",
                      SerialBackend(worker=lambda spec, tracer=None:
                                    _fake_result(spec)))
    kwargs.setdefault("telemetry_dir", tmp_path / "tel")
    kwargs.setdefault("run_id", "run-test")
    return ExperimentEngine(store=ResultStore(tmp_path / "v2"),
                            **kwargs)


class FlakyBackend(ExecutionBackend):
    """Dispatches every job twice (simulated crash retry) then lands
    the configured outcome — exercises the retry lifecycle path the
    serial backend never takes."""

    name = "flaky"

    def __init__(self, fail_keys=()):
        self.fail_keys = set(fail_keys)

    def run(self, specs, on_result=None, tracers=None, on_start=None):
        results = []
        for spec in specs:
            if on_start is not None:
                on_start(spec, 1)
                on_start(spec, 2)  # crash: worker re-dispatched
            if spec.key in self.fail_keys:
                job_result = JobResult(
                    spec=spec, status="failed", attempts=2,
                    error="worker crashed (exit code -9) after "
                          "2 attempt(s)",
                    wall_seconds=0.1, backend=self.name)
            else:
                job_result = JobResult(
                    spec=spec, status="ok", result=_fake_result(spec),
                    attempts=2, wall_seconds=0.1, backend=self.name)
            results.append(job_result)
            if on_result is not None:
                on_result(job_result)
        return results


def test_lifecycle_events_fire_on_start_not_only_completion(tmp_path):
    seen = []
    engine = _engine(tmp_path, on_event=seen.append)
    specs = _specs(2)
    engine.run(specs)
    kinds = [(event.kind, event.spec.job_id) for event in seen]
    for spec in specs:
        assert kinds.index(("queued", spec.job_id)) \
            < kinds.index(("started", spec.job_id)) \
            < kinds.index(("done", spec.job_id))
    # the same history is on disk for other processes
    disk = [(e["kind"], e["job"]) for e in
            telemetry.read_events(engine.telemetry_run_dir)]
    assert disk == kinds


def test_cached_jobs_emit_cached_events_and_skip_started(tmp_path):
    specs = _specs(2)
    _engine(tmp_path).run(specs)

    seen = []
    engine = _engine(tmp_path, run_id="run-resume",
                     on_event=seen.append)
    engine.run(specs)  # resumes from results-v2: nothing dispatched
    assert [event.kind for event in seen] == ["cached", "cached"]
    report = telemetry.read_report(engine.telemetry_run_dir)
    assert report["cached"] == 2
    assert report["ok"] == 2


def test_retry_events_carry_attempt_numbers(tmp_path):
    seen = []
    engine = _engine(tmp_path, backend=FlakyBackend(),
                     on_event=seen.append)
    engine.run(_specs(1))
    kinds = [(event.kind, event.attempt) for event in seen]
    assert kinds == [("queued", 1), ("started", 1), ("retrying", 2),
                     ("done", 2)]
    report = telemetry.read_report(engine.telemetry_run_dir)
    assert report["retries"] == 1


def test_failure_summary_surfaces_retry_counts(tmp_path):
    specs = _specs(1)
    engine = _engine(tmp_path,
                     backend=FlakyBackend(fail_keys={specs[0].key}))
    outcomes = engine.run(specs)
    (failure,) = outcomes.values()
    summary = format_failure_summary([failure])
    assert "attempt 2, 1 crash retry" in summary
    assert "1 crash retry attempt(s) consumed" in summary


def test_queue_wait_measured_on_first_start_only(tmp_path):
    engine = _engine(tmp_path, backend=FlakyBackend())
    engine.run(_specs(1))
    report = telemetry.read_report(engine.telemetry_run_dir)
    (job,) = report["jobs"]
    assert job["queue_wait_seconds"] is not None
    assert job["queue_wait_seconds"] >= 0.0
    assert job["attempts"] == 2


def test_straggler_flagging_uses_median_and_floor(tmp_path):
    class UnevenBackend(ExecutionBackend):
        name = "uneven"

        def run(self, specs, on_result=None, tracers=None,
                on_start=None):
            walls = {spec.key: wall
                     for spec, wall in zip(specs, (1.0, 1.2, 5.0))}
            results = []
            for spec in specs:
                if on_start is not None:
                    on_start(spec, 1)
                job_result = JobResult(
                    spec=spec, status="ok",
                    result=_fake_result(spec),
                    wall_seconds=walls[spec.key], backend=self.name)
                results.append(job_result)
                if on_result is not None:
                    on_result(job_result)
            return results

    engine = _engine(tmp_path, backend=UnevenBackend())
    engine.run(_specs(3))
    report = telemetry.read_report(engine.telemetry_run_dir)
    assert report["stragglers"] == ["b2:full:tiny"]
    flags = {job["job"]: job["straggler"] for job in report["jobs"]}
    assert flags == {"b0:full:tiny": False, "b1:full:tiny": False,
                     "b2:full:tiny": True}


def test_manifest_written_with_job_list(tmp_path):
    engine = _engine(tmp_path)
    engine.run(_specs(2))
    manifest = telemetry.read_manifest(engine.telemetry_run_dir)
    assert manifest["backend"] == "serial"
    assert manifest["jobs"] == ["b0:full:tiny", "b1:full:tiny"]


def test_no_telemetry_dir_means_no_telemetry(tmp_path):
    engine = ExperimentEngine(
        store=ResultStore(tmp_path / "v2"),
        backend=SerialBackend(worker=lambda spec, tracer=None:
                              _fake_result(spec)))
    outcomes = engine.run(_specs(1))
    assert all(jr.ok for jr in outcomes.values())
    assert engine.telemetry_run_dir is None
    assert not (tmp_path / "tel").exists()


def _normalize_report(report):
    """Zero the volatile (wall-clock) fields so the remainder can be
    compared against the committed golden report bit-for-bit."""
    report = json.loads(json.dumps(report, sort_keys=True))
    report["generated_at"] = 0.0
    report["wall_seconds_total"] = 0.0
    report["median_wall_seconds"] = 0.0
    for job in report["jobs"]:
        job["wall_seconds"] = 0.0
        if job["queue_wait_seconds"] is not None:
            job["queue_wait_seconds"] = 0.0
        if job["wall_seconds_by_mode"] is not None:
            job["wall_seconds_by_mode"] = {
                mode: 0.0 for mode in job["wall_seconds_by_mode"]}
    return report


def test_two_job_serial_run_matches_golden_report(tmp_path):
    from pathlib import Path
    engine = _engine(
        tmp_path,
        backend=SerialBackend(
            worker=lambda spec, tracer=None: _fake_result(
                spec, wall_by_mode={"fast": 0.5, "timed": 1.5})))
    engine.run(_specs(2))
    report = telemetry.read_report(engine.telemetry_run_dir)
    golden = json.loads(
        (Path(__file__).parent / "golden_run_report.json").read_text())
    assert _normalize_report(report) == golden
