"""Backend tests: serial/parallel parity, crash retry, timeouts."""

import os
import time
from pathlib import Path

import pytest

from repro.exec import (JobSpec, ProcessPoolBackend, SerialBackend,
                        execute_spec)
from repro.harness import make_spec
from repro.sampling import PolicyResult

PARITY_GRID = [("gzip", "full"), ("gzip", "EXC-300-1M-10"),
               ("mcf", "full"), ("mcf", "EXC-300-1M-10")]


def _fake_result(spec):
    return PolicyResult(
        policy=spec.policy, benchmark=spec.benchmark, ipc=1.0,
        total_instructions=10, fast_instructions=0,
        profile_instructions=0, warming_instructions=0,
        timed_instructions=10, timed_intervals=1,
        wall_seconds=0.0, modeled_seconds=1.0,
        fingerprint=spec.fingerprint)


def fake_worker(spec, tracer=None):
    return _fake_result(spec)


def crashy_worker(spec):
    """Dies hard (no exception, no result) on the first attempt."""
    marker = Path(os.environ["REPRO_TEST_CRASH_DIR"]) / \
        spec.job_id.replace(":", "_")
    if not marker.exists():
        marker.touch()
        os._exit(3)
    return _fake_result(spec)


def always_crashing_worker(spec):
    os._exit(3)


def raising_worker(spec):
    raise ValueError("deterministic failure")


def sleepy_worker(spec):
    time.sleep(30)
    return _fake_result(spec)


# ----------------------------------------------------------------------
# parity: the acceptance-criterion core

def test_backend_parity_two_policies_two_benchmarks():
    """Serial and process-pool backends must produce identical
    PolicyResults (up to host wall-clock) for the same jobs."""
    specs = [make_spec(bench, policy, "tiny")
             for bench, policy in PARITY_GRID]
    serial = {jr.spec.key: jr
              for jr in SerialBackend().run(specs)}
    parallel = {jr.spec.key: jr
                for jr in ProcessPoolBackend(jobs=2).run(specs)}
    assert set(serial) == set(parallel) == {s.key for s in specs}
    for spec in specs:
        assert serial[spec.key].ok and parallel[spec.key].ok
        assert (serial[spec.key].result.canonical_dict()
                == parallel[spec.key].result.canonical_dict()), spec.key


def test_execute_spec_stamps_fingerprint_and_job():
    spec = make_spec("gzip", "full", "tiny")
    result = execute_spec(spec)
    assert result.fingerprint == spec.fingerprint
    assert result.job == {"id": "gzip:full:tiny"}


# ----------------------------------------------------------------------
# failure handling

def _specs(n=1):
    return [JobSpec(benchmark=f"b{i}", policy="full", size="tiny",
                    fingerprint="f") for i in range(n)]


def test_worker_crash_is_retried(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_CRASH_DIR", str(tmp_path))
    backend = ProcessPoolBackend(jobs=2, crash_retries=1,
                                 worker=crashy_worker)
    results = backend.run(_specs(3))
    assert len(results) == 3
    for job_result in results:
        assert job_result.ok
        assert job_result.attempts == 2  # crashed once, then succeeded


def test_worker_crash_retry_is_bounded():
    backend = ProcessPoolBackend(jobs=2, crash_retries=1,
                                 worker=always_crashing_worker)
    (job_result,) = backend.run(_specs(1))
    assert not job_result.ok
    assert "crashed" in job_result.error
    assert job_result.attempts == 2  # initial + one retry, then gave up


def test_worker_exception_fails_without_retry():
    backend = ProcessPoolBackend(jobs=2, worker=raising_worker)
    (job_result,) = backend.run(_specs(1))
    assert not job_result.ok
    assert job_result.attempts == 1  # deterministic: retrying is waste
    assert "ValueError: deterministic failure" in job_result.error


def test_per_job_timeout_kills_the_worker():
    backend = ProcessPoolBackend(jobs=2, timeout=0.5,
                                 worker=sleepy_worker)
    started = time.perf_counter()
    (job_result,) = backend.run(_specs(1))
    elapsed = time.perf_counter() - started
    assert not job_result.ok
    assert "timeout" in job_result.error
    assert elapsed < 10  # nowhere near the worker's 30 s sleep


def test_serial_backend_catches_exceptions():
    (job_result,) = SerialBackend(worker=raising_worker).run(_specs(1))
    assert not job_result.ok
    assert "ValueError" in job_result.error


def test_process_pool_falls_back_to_serial(monkeypatch):
    from repro.exec import backends
    monkeypatch.setattr(backends, "_mp", None)
    backend = ProcessPoolBackend(jobs=4, worker=fake_worker)
    results = backend.run(_specs(2))
    assert all(jr.ok for jr in results)
    assert all(jr.backend == "serial" for jr in results)
