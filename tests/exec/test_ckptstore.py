"""Tests for the on-disk checkpoint store: round trips, dedup,
torn-ladder recovery, artifacts, and concurrent-writer integrity."""

import json
import multiprocessing

import pytest

from repro.exec.ckptstore import (CheckpointLadder, CheckpointStore,
                                 program_fingerprint, rung_key)
from repro.kernel.checkpoint import restore, take
from repro.workloads import WorkloadBuilder


def build_workload(seed=9):
    builder = WorkloadBuilder("ckpt-store", seed=seed)
    builder.phase("crc", iters=4000)
    builder.phase("stream", n=512, iters=4)
    builder.phase("console_io", nbytes=16)
    return builder.build()


def booted(icount=20_000):
    system = build_workload().boot()
    system.run(icount)
    return system


# ----------------------------------------------------------------------
# keys


def test_rung_key_depends_on_full_history():
    assert rung_key([1000]) == rung_key([1000])
    assert rung_key([1000]) != rung_key([2000])
    # same final target, different path -> different rung
    assert rung_key([1000, 5000]) != rung_key([5000])
    assert len(rung_key([7])) == 16


def test_program_fingerprint_distinguishes_programs():
    builder = WorkloadBuilder("ckpt-store", seed=9)
    builder.phase("crc", iters=5000)  # different program image
    other = builder.build()
    a = program_fingerprint(build_workload())
    assert a == program_fingerprint(build_workload())
    assert a != program_fingerprint(other)


# ----------------------------------------------------------------------
# checkpoint round trips


def test_publish_load_round_trip_is_bit_identical(tmp_path):
    system = booted()
    checkpoint = take(system)
    store = CheckpointStore(tmp_path / "ckpt")
    store.publish_checkpoint("prog", "cfg", "aa", checkpoint)

    # a *fresh* store instance (empty blob cache) must reconstruct the
    # identical checkpoint from disk alone
    fresh = CheckpointStore(tmp_path / "ckpt")
    loaded = fresh.load_checkpoint("prog", "cfg", "aa")
    assert loaded is not None
    assert loaded.cpu == checkpoint.cpu
    assert loaded.frames == checkpoint.frames
    assert loaded.page_table == checkpoint.page_table
    assert loaded.stats == checkpoint.stats
    assert loaded.fast_cache == checkpoint.fast_cache
    assert loaded.kernel == checkpoint.kernel
    assert loaded.console == checkpoint.console
    assert loaded.disk == checkpoint.disk

    # and restoring it must resume to the same end state as the source
    system.run_to_completion()
    end = system.machine.state.snapshot()
    other = build_workload().boot()
    restore(other, loaded)
    other.run_to_completion()
    assert other.machine.state.snapshot() == end
    assert other.output == system.output


def test_delta_rungs_share_blobs(tmp_path):
    system = booted()
    parent = take(system)
    system.run(5_000)
    child = take(system, parent=parent)
    assert child.delta_bytes < child.memory_bytes

    store = CheckpointStore(tmp_path / "ckpt")
    store.publish_checkpoint("prog", "cfg", "aa", parent)
    blobs_after_parent = len(list(
        (tmp_path / "ckpt" / "blobs").rglob("*.z")))
    store.publish_checkpoint("prog", "cfg", "bb", child)
    blobs_after_child = len(list(
        (tmp_path / "ckpt" / "blobs").rglob("*.z")))
    # the child reuses the parent's unchanged page images: far fewer
    # new blobs than total frames
    assert blobs_after_child - blobs_after_parent < len(child.frames)
    assert sorted(store.list_rungs("prog", "cfg")) == ["aa", "bb"]


def test_publish_is_idempotent_and_leaves_no_tmp(tmp_path):
    system = booted()
    checkpoint = take(system)
    store = CheckpointStore(tmp_path / "ckpt")
    store.publish_checkpoint("prog", "cfg", "aa", checkpoint)
    store.publish_checkpoint("prog", "cfg", "aa", checkpoint)
    assert store.list_rungs("prog", "cfg") == ["aa"]
    assert not list((tmp_path / "ckpt").rglob("*.tmp"))


def test_torn_ladder_loads_as_missing(tmp_path):
    system = booted()
    checkpoint = take(system)
    store = CheckpointStore(tmp_path / "ckpt")
    store.publish_checkpoint("prog", "cfg", "aa", checkpoint)
    # simulate a crash that lost one blob (manifest survived)
    victim = next((tmp_path / "ckpt" / "blobs").rglob("*.z"))
    victim.unlink()
    fresh = CheckpointStore(tmp_path / "ckpt")
    assert fresh.load_checkpoint("prog", "cfg", "aa") is None
    # unknown rungs are also just missing, never an error
    assert fresh.load_checkpoint("prog", "cfg", "ff") is None


def test_corrupt_manifest_loads_as_missing(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    ladder = store.ladder_dir("prog", "cfg")
    ladder.mkdir(parents=True)
    (ladder / "ckpt-aa.json").write_text("{not json")
    assert store.load_checkpoint("prog", "cfg", "aa") is None


# ----------------------------------------------------------------------
# derived artifacts


def test_artifact_round_trip_and_first_writer_wins(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    payload = {"points": [[0, 0.5], [3, 0.5]], "num_clusters": 2}
    store.publish_artifact("prog", "cfg", "selection-1000", payload)
    assert store.load_artifact("prog", "cfg", "selection-1000") \
        == payload
    # artifacts are write-once: a second publish never clobbers
    store.publish_artifact("prog", "cfg", "selection-1000",
                           {"points": []})
    assert store.load_artifact("prog", "cfg", "selection-1000") \
        == payload
    assert store.load_artifact("prog", "cfg", "selection-9") is None


def test_artifact_names_are_validated(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    for bad in ("ckpt-aa", "../escape", "a/b", ""):
        with pytest.raises(ValueError):
            store.publish_artifact("prog", "cfg", bad, {})
        with pytest.raises(ValueError):
            store.load_artifact("prog", "cfg", bad)


def test_profiles_do_not_collide_with_rungs(tmp_path):
    system = booted()
    store = CheckpointStore(tmp_path / "ckpt")
    store.publish_checkpoint("prog", "cfg", "aa", take(system))
    store.publish_profile("prog", "cfg", 1000, {"starts": [0]})
    assert store.list_rungs("prog", "cfg") == ["aa"]
    assert store.load_profile("prog", "cfg", 1000) == {"starts": [0]}


# ----------------------------------------------------------------------
# the ladder facade


def test_ladder_publish_and_load(tmp_path):
    system = booted()
    store = CheckpointStore(tmp_path / "ckpt")
    ladder = CheckpointLadder(store, "prog", "cfg")
    key = rung_key([20_000])
    published = ladder.publish(key, system)
    assert published.memory_bytes > 0
    loaded = CheckpointLadder(CheckpointStore(tmp_path / "ckpt"),
                              "prog", "cfg").load(key)
    assert loaded is not None
    assert loaded.cpu == published.cpu
    assert ladder.rungs() == [key]


# ----------------------------------------------------------------------
# concurrency (mirrors the result-store concurrent-writer test)


def _publisher(root, worker_id, manifest, blobs):
    from repro.exec.ckptstore import decode_manifest
    checkpoint = decode_manifest(manifest, blobs)
    store = CheckpointStore(root)
    # everyone hammers the same rung (same blobs, same manifest) plus
    # one rung of their own
    store.publish_checkpoint("prog", "cfg", "dd", checkpoint)
    store.publish_checkpoint("prog", "cfg", f"aa{worker_id}", checkpoint)
    store.publish_artifact("prog", "cfg", "profile-1000",
                           {"from": worker_id})


def test_concurrent_publishers_do_not_clobber(tmp_path):
    from repro.exec.ckptstore import encode_manifest
    system = booted()
    checkpoint = take(system)
    manifest = encode_manifest(checkpoint)
    blobs = {digest: checkpoint.resolve_blob(digest)
             for digest in set(checkpoint.frame_hashes.values())}
    root = tmp_path / "ckpt"
    workers = 4
    ctx = multiprocessing.get_context("fork")
    procs = [ctx.Process(target=_publisher,
                         args=(root, w, manifest, blobs))
             for w in range(workers)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(60)
        assert proc.exitcode == 0
    store = CheckpointStore(root)
    rungs = store.list_rungs("prog", "cfg")
    assert set(rungs) == {"dd"} | {f"aa{w}" for w in range(workers)}
    for key in rungs:
        loaded = store.load_checkpoint("prog", "cfg", key)
        assert loaded is not None
        assert loaded.frames == checkpoint.frames
    # exactly one artifact writer won, and the payload is valid JSON
    artifact = store.load_artifact("prog", "cfg", "profile-1000")
    assert artifact["from"] in range(workers)
    assert not list(root.rglob("*.tmp"))
