"""Committed snapshot of results-v2 store keys and fingerprints.

The SMP refactor's compatibility contract: single-core runs keep the
exact TimingConfig fingerprint, store key and job id they had before
multi-core existed — the literals below were captured from the pre-SMP
seed and must never drift, or every cached result in every results-v2
store on disk silently misses.  Multi-core runs get a *distinct*
fingerprint (and a ``:cN`` job-id suffix) so they can never collide
with single-core entries.
"""

from repro.exec import default_fingerprint
from repro.harness.experiments import make_spec, smp_fingerprint

# captured at the pre-SMP seed commit -- do not regenerate
SEED_FINGERPRINT = "a26a32a1d04f"
SMP2_FINGERPRINT = "752dbc498c7e"


def test_single_core_fingerprint_matches_seed_snapshot():
    assert default_fingerprint() == SEED_FINGERPRINT


def test_single_core_store_key_matches_seed_snapshot():
    spec = make_spec("gzip", "CPU-300-1M-inf", "small")
    assert spec.key == f"gzip|CPU-300-1M-inf|small|{SEED_FINGERPRINT}"
    assert spec.job_id == "gzip:CPU-300-1M-inf:small"
    assert spec.cores == 1


def test_explicit_one_core_is_byte_identical_to_default():
    implicit = make_spec("gzip", "CPU-300-1M-inf", "small")
    explicit = make_spec("gzip", "CPU-300-1M-inf", "small", cores=1)
    assert explicit.key == implicit.key
    assert explicit.job_id == implicit.job_id
    assert explicit.fingerprint == SEED_FINGERPRINT


def test_statistical_zoo_policies_share_the_seed_fingerprint():
    # the policy zoo additions ride the same config fingerprint: a new
    # policy key must never invalidate cached results of existing ones
    for policy in ("stratified", "stratified-24", "rankedset",
                   "rankedset-6", "simpoint-mav"):
        spec = make_spec("gzip", policy, "tiny")
        assert spec.key == f"gzip|{policy}|tiny|{SEED_FINGERPRINT}"
        assert spec.job_id == f"gzip:{policy}:tiny"
        assert spec.cores == 1


def test_multi_core_keys_are_distinct():
    assert smp_fingerprint(2) == SMP2_FINGERPRINT
    assert smp_fingerprint(2) != default_fingerprint()
    assert smp_fingerprint(2) != smp_fingerprint(4)

    spec = make_spec("pcq", "full", "tiny")  # parallel: defaults 2 cores
    assert spec.key == f"pcq|full|tiny|{SMP2_FINGERPRINT}"
    assert spec.job_id == "pcq:full:tiny:c2"
    assert spec.cores == 2


def test_sequential_benchmark_on_many_cores_changes_key():
    spec = make_spec("gzip", "full", "tiny", cores=2)
    assert spec.fingerprint == SMP2_FINGERPRINT
    assert spec.job_id == "gzip:full:tiny:c2"
