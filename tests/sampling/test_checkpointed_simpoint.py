"""Tests for checkpoint-based SimPoint."""

import pytest

from repro.sampling import (CheckpointedSimPointSampler, FullTiming,
                            SimPointConfig, SimPointSampler,
                            SimulationController, accuracy_error)
from repro.workloads import SUITE_MACHINE_KWARGS, WorkloadBuilder


def workload():
    builder = WorkloadBuilder("ckpt-sp", seed=11)
    for _ in range(4):
        builder.phase("crc", iters=4000)
        builder.phase("stream", n=512, iters=8, reuse_key="ws")
        builder.phase("console_io", nbytes=16, reps=2)
    return builder.build()


def controller(w):
    return SimulationController(w, machine_kwargs=SUITE_MACHINE_KWARGS)


CONFIG = SimPointConfig(interval_length=1000, max_clusters=12,
                        warmup_length=2000)


def test_checkpointed_simpoint_no_fast_forward():
    w = workload()
    result = CheckpointedSimPointSampler(CONFIG).run(controller(w))
    # pass 2 never fast-forwards: restore replaces it entirely
    assert result.fast_instructions == 0
    assert result.timed_intervals >= 2
    assert result.extra["checkpoint_bytes"] > 0


def test_checkpointed_matches_plain_simpoint_points():
    w = workload()
    plain = SimPointSampler(CONFIG).run(controller(w))
    ckpt = CheckpointedSimPointSampler(CONFIG).run(controller(w))
    # identical profiling/clustering -> identical point count
    assert (ckpt.extra["num_simpoints"]
            == plain.extra["num_simpoints"])
    # and closely matching IPC estimates (state differs only through
    # what warming rebuilds after a restore vs after a fast-forward)
    assert ckpt.ipc == pytest.approx(plain.ipc, rel=0.15)


def test_checkpointed_simpoint_is_reasonably_accurate():
    w = workload()
    full = FullTiming().run(controller(w))
    ckpt = CheckpointedSimPointSampler(CONFIG).run(controller(w))
    assert accuracy_error(ckpt.ipc, full.ipc) < 0.30


def test_checkpointed_charges_only_warming_and_timed():
    w = workload()
    result = CheckpointedSimPointSampler(CONFIG).run(controller(w))
    # modeled time excludes the (large) profiling instruction count
    assert result.modeled_seconds \
        < result.extra["modeled_seconds_all_modes"]


def test_point_beyond_program_end_is_dropped_and_renormalized(
        monkeypatch):
    # regression: a simulation point past program end used to be
    # silently skipped *without* renormalizing the remaining weights,
    # deflating the whole-program IPC estimate
    w = workload()
    baseline = CheckpointedSimPointSampler(CONFIG).run(controller(w))
    assert baseline.extra["dropped_simpoints"] == 0

    from repro.sampling.simpoint import checkpointed as mod
    real_select = mod.select_simpoints_cached

    def with_bogus_point(ctrl, matrix_source, config):
        selection = real_select(ctrl, matrix_source, config)
        # the sampler passes the collector's bound matrix method; pull
        # the collector back out to plant a point whose warm-up window
        # starts far beyond program end
        collector = matrix_source.__self__
        selection.points.append((len(collector.starts), 0.5))
        collector.starts.append(10 ** 9)
        return selection

    monkeypatch.setattr(mod, "select_simpoints_cached", with_bogus_point)
    result = CheckpointedSimPointSampler(CONFIG).run(controller(w))
    assert result.extra["dropped_simpoints"] == 1
    # the real points' weights summed to 1.0, so renormalizing by the
    # captured weight reproduces the baseline estimate exactly
    assert result.extra["captured_weight"] == pytest.approx(1.0)
    assert result.ipc == baseline.ipc
    assert result.timed_intervals == baseline.timed_intervals
