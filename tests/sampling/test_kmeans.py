"""Tests for the SimPoint clustering machinery."""

import numpy as np
import pytest

from repro.sampling.simpoint.kmeans import (choose_clustering, kmeans,
                                            random_projection)
from repro.sampling.simpoint import select_simpoints, SimPointConfig


def blobs(centers, per_cluster=30, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for center in centers:
        rows.append(center + spread * rng.standard_normal(
            (per_cluster, len(center))))
    return np.vstack(rows)


def test_kmeans_recovers_separated_blobs():
    data = blobs([np.zeros(4), np.ones(4) * 5, np.ones(4) * -5])
    result = kmeans(data, 3, seed=1)
    assert result.k == 3
    # each true blob maps to exactly one label
    labels = result.labels
    for start in (0, 30, 60):
        assert len(set(labels[start:start + 30])) == 1
    assert result.inertia < kmeans(data, 1, seed=1).inertia


def test_kmeans_k_capped_by_points():
    data = blobs([np.zeros(3)], per_cluster=4)
    result = kmeans(data, 10, seed=0)
    assert result.k == 4


def test_kmeans_deterministic():
    data = blobs([np.zeros(5), np.ones(5) * 3], seed=2)
    a = kmeans(data, 4, seed=7)
    b = kmeans(data, 4, seed=7)
    assert np.array_equal(a.labels, b.labels)
    assert a.inertia == b.inertia


def test_choose_clustering_prefers_enough_clusters():
    data = blobs([np.zeros(4), np.ones(4) * 5, np.ones(4) * -5,
                  np.array([5.0, -5.0, 5.0, -5.0])], per_cluster=40)
    result = choose_clustering(data, max_k=16, seed=0, min_k=1)
    assert result.k >= 4


def test_choose_clustering_min_k_floor():
    data = blobs([np.zeros(4)], per_cluster=400, spread=0.2)
    result = choose_clustering(data, max_k=40, seed=0)
    assert result.k >= 4  # 400 // 100


def test_random_projection_shape_and_determinism():
    rng = np.random.default_rng(0)
    data = rng.standard_normal((50, 200))
    a = random_projection(data, dims=15, seed=3)
    b = random_projection(data, dims=15, seed=3)
    assert a.shape == (50, 15)
    assert np.array_equal(a, b)
    c = random_projection(data, dims=15, seed=4)
    assert not np.array_equal(a, c)


def test_random_projection_skips_when_small():
    data = np.ones((10, 5))
    assert random_projection(data, dims=15).shape == (10, 5)


def test_random_projection_roughly_preserves_distances():
    rng = np.random.default_rng(1)
    data = rng.standard_normal((20, 500))
    projected = random_projection(data, dims=50, seed=1)
    original = np.linalg.norm(data[0] - data[1])
    mapped = np.linalg.norm(projected[0] - projected[1])
    assert 0.5 < mapped / original < 2.0


def test_select_simpoints_weights_sum_to_one():
    data = blobs([np.zeros(6), np.ones(6) * 4], per_cluster=50)
    config = SimPointConfig(max_clusters=8)
    selection = select_simpoints(data, config)
    total = sum(weight for _, weight in selection.points)
    assert total == pytest.approx(1.0)
    indices = [index for index, _ in selection.points]
    assert indices == sorted(indices)
    assert all(0 <= index < 100 for index in indices)


def test_select_simpoints_empty():
    selection = select_simpoints(np.zeros((0, 0)), SimPointConfig())
    assert selection.points == []
    assert selection.num_clusters == 0
