"""Per-core dynamic sampling on multi-core guests.

The SMP generalization of Algorithm 1: per-(core, variable) monitored
streams with gang scheduling — a trigger on *any* hart switches every
hart into the warm-up + timed interval together, so the chip is always
sampled as a unit.  Single-core behaviour (and its event payloads) must
stay byte-identical to the pre-SMP sampler.
"""

import dataclasses

import pytest

from repro import obs
from repro.harness.experiments import policy_factory
from repro.sampling import (DynamicSampler, FullTiming,
                            SimulationController,
                            SmpSimulationController, dynamic_config,
                            make_controller)
from repro.timing import TimingConfig
from repro.workloads import (SUITE_MACHINE_KWARGS, load_benchmark)

ENGINES = ("fused", "event", "interp")


def smp_controller(bench="lockcnt", engine="fused", n_cores=2,
                   tracer=None, size="tiny"):
    config = dataclasses.replace(TimingConfig.small(),
                                 fast_path=engine == "fused")
    controller = make_controller(
        load_benchmark(bench, size=size),
        timing_config=config,
        machine_kwargs={**SUITE_MACHINE_KWARGS, "n_cores": n_cores},
        tracer=tracer)
    if engine == "interp":
        for core in controller.machine.cores:
            core.fast_path = False  # REPRO_SLOW_PATH=1 equivalent
    return controller


# ----------------------------------------------------------------------
# controller routing


def test_make_controller_routes_parallel_to_smp():
    controller = make_controller(load_benchmark("pcq", size="tiny"),
                                 machine_kwargs=SUITE_MACHINE_KWARGS)
    assert isinstance(controller, SmpSimulationController)
    assert controller.n_cores == 2


def test_make_controller_keeps_sequential_single_core():
    controller = make_controller(load_benchmark("gzip", size="tiny"),
                                 machine_kwargs=SUITE_MACHINE_KWARGS)
    assert type(controller) is SimulationController
    assert controller.n_cores == 1


def test_explicit_core_count_wins():
    controller = make_controller(
        load_benchmark("pcq", size="tiny"),
        machine_kwargs={**SUITE_MACHINE_KWARGS, "n_cores": 4})
    assert controller.n_cores == 4


def test_smp_controller_aggregates_stats():
    controller = smp_controller(n_cores=2)
    controller.run_fast(2000)
    per_core = controller.per_core_vm_stats()
    assert len(per_core) == 2
    snapshot = controller.vm_stats_snapshot()
    assert "per_core" not in snapshot
    for key in ("exceptions", "io_operations", "block_dispatches"):
        assert snapshot[key] == sum(stats[key] for stats in per_core)
    assert controller.icount == controller.machine.total_icount


# ----------------------------------------------------------------------
# gang scheduling


def gang_decisions(max_func=2, n_cores=2):
    sink = obs.RingBufferSink(capacity=100_000)
    controller = smp_controller(n_cores=n_cores,
                                tracer=obs.Tracer(sink))
    sampler = DynamicSampler(dynamic_config("EXC", 300, "1M", max_func))
    result = sampler.run(controller)
    return result, obs.decision_timeline(sink.events)


def test_every_interval_emits_one_decision_per_core():
    _, records = gang_decisions()
    by_interval = {}
    for record in records:
        by_interval.setdefault(record["interval"], []).append(record)
    assert by_interval
    for interval, group in by_interval.items():
        assert sorted(record["core"] for record in group) == [0, 1]
        for record in group:
            assert record["cores"] == 2


def test_gang_rule_fires_all_cores_together():
    """fired/forced are chip-wide verdicts: within one interval either
    every core's decision fired or none did, and a non-forced firing
    names at least one core whose own stream tripped Algorithm 1."""
    _, records = gang_decisions()
    by_interval = {}
    for record in records:
        by_interval.setdefault(record["interval"], []).append(record)
    fired_intervals = 0
    for group in by_interval.values():
        fired = {record["fired"] for record in group}
        forced = {record["forced"] for record in group}
        assert len(fired) == 1 and len(forced) == 1
        if fired.pop():
            fired_intervals += 1
            if not forced.pop():
                assert any(record["core_trigger"] for record in group)
    assert fired_intervals > 0


def test_per_core_warm_state_events():
    sink = obs.RingBufferSink(capacity=100_000)
    controller = smp_controller(n_cores=2, tracer=obs.Tracer(sink))
    FullTiming().run(controller)
    warm = [event.payload for event in sink.events
            if event.type == obs.EV_WARMSTATE]
    assert warm
    assert sorted({payload["core"] for payload in warm}) == [0, 1]
    for payload in warm:
        assert payload["cores"] == 2
        assert payload["instructions"] >= 0


def test_full_timing_reports_chip_and_per_core_stats():
    result = FullTiming().run(smp_controller(n_cores=2))
    assert len(result.extra["per_core_stats"]) == 2
    cores_extra = result.extra["cores"]
    assert cores_extra["n"] == 2
    vm_stats = cores_extra["vm_stats"]
    assert len(vm_stats) == 2
    # chip instruction total is the sum of the per-hart streams
    assert result.total_instructions == sum(
        stats["instructions_total"] for stats in vm_stats)
    assert result.ipc > 0


# ----------------------------------------------------------------------
# engine parity (2-core, all three engines, several policies)

POLICIES = ("full", "smarts", "CPU-300-1M-inf", "EXC-300-1M-2")

_memo = {}


def run_policy_on_engine(policy_key, engine, bench="lockcnt"):
    key = (policy_key, engine, bench)
    if key in _memo:
        return _memo[key]
    sink = obs.RingBufferSink(capacity=200_000)
    controller = smp_controller(bench=bench, engine=engine,
                                tracer=obs.Tracer(sink))
    result = policy_factory(policy_key)().run(controller)
    decisions = [{k: v for k, v in record.items() if k != "ts"}
                 for record in obs.decision_timeline(sink.events)]
    _memo[key] = (result, decisions)
    return _memo[key]


@pytest.mark.parametrize("engine", ("event", "interp"))
@pytest.mark.parametrize("policy_key", POLICIES)
def test_policy_parity_two_cores(policy_key, engine):
    fast_result, fast_decisions = run_policy_on_engine(policy_key,
                                                       "fused")
    slow_result, slow_decisions = run_policy_on_engine(policy_key,
                                                       engine)
    assert abs(fast_result.ipc - slow_result.ipc) < 1e-9
    assert fast_result.total_instructions \
        == slow_result.total_instructions
    assert fast_result.timed_intervals == slow_result.timed_intervals
    assert fast_result.extra["vm_stats"] == slow_result.extra["vm_stats"]
    # the per-core monitors agree hart by hart, dispatches included
    assert fast_result.extra["cores"] == slow_result.extra["cores"]
    assert fast_decisions == slow_decisions


# ----------------------------------------------------------------------
# single-core byte parity


def test_single_core_results_unchanged_by_smp_layer():
    """An explicit 1-core SMP-capable call must produce the identical
    canonical result (and vm_stats) as the pre-SMP controller path."""
    def run(machine_kwargs, force_plain):
        workload = load_benchmark("gzip", size="tiny")
        if force_plain:
            controller = SimulationController(
                workload, machine_kwargs=machine_kwargs)
        else:
            controller = make_controller(workload,
                                         machine_kwargs=machine_kwargs)
        sampler = DynamicSampler(dynamic_config("EXC", 300, "1M", 10))
        return sampler.run(controller)

    plain = run(dict(SUITE_MACHINE_KWARGS), force_plain=True)
    routed = run(dict(SUITE_MACHINE_KWARGS), force_plain=False)
    assert routed.canonical_dict() == plain.canonical_dict()
    assert routed.extra["vm_stats"] == plain.extra["vm_stats"]
    assert "cores" not in routed.extra
