"""Tests for ranked-set sampling and the repeated-subsample CI."""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import (RankedSetConfig, RankedSetSampler,
                            RepeatedSubsampleEstimator,
                            SimulationController,
                            ranked_set_subsamples)
from repro.workloads import SUITE_MACHINE_KWARGS, WorkloadBuilder


def tiny_workload():
    builder = WorkloadBuilder("tiny-rss", seed=7)
    for i in range(6):
        if i % 2 == 0:
            builder.phase("crc", iters=3000)
        else:
            builder.phase("stream", n=256, iters=8)
    return builder.build()


def make_controller():
    return SimulationController(tiny_workload(),
                                machine_kwargs=SUITE_MACHINE_KWARGS)


# ----------------------------------------------------------------------
# subsample construction

def test_subsamples_every_set_represented_in_every_cycle():
    scores = [5.0, 1.0, 3.0, 2.0, 4.0, 0.5, 6.0]
    cycles = ranked_set_subsamples(scores, set_size=3, cycles=3)
    assert len(cycles) == 3
    for picks in cycles:
        # one pick per set: sets are [0,1,2], [3,4,5], [6]
        assert len(picks) == 3
        assert sum(1 for i in picks if i < 3) == 1
        assert sum(1 for i in picks if 3 <= i < 6) == 1
        assert picks[-1] == 6  # the partial set has a single member


def test_subsamples_rank_rotates_through_the_set():
    scores = [2.0, 0.0, 1.0]  # ranks within the set: 1, 2, 0
    cycles = ranked_set_subsamples(scores, set_size=3, cycles=3)
    # cycle c takes rank c from the single set
    assert cycles == [[1], [2], [0]]


def test_subsamples_single_interval():
    assert ranked_set_subsamples([1.0], set_size=5, cycles=3) \
        == [[0], [0], [0]]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                max_size=40),
       st.integers(1, 8), st.integers(1, 6))
def test_subsamples_structure(scores, set_size, cycles):
    picks = ranked_set_subsamples(scores, set_size, cycles)
    n_sets = math.ceil(len(scores) / set_size)
    assert len(picks) == cycles
    for cycle in picks:
        assert len(cycle) == n_sets
        assert len(set(cycle)) == n_sets  # distinct: one per set
        for j, index in enumerate(cycle):
            assert j * set_size <= index < (j + 1) * set_size


# ----------------------------------------------------------------------
# repeated-subsample estimator

def test_estimator_mean_and_halfwidth():
    est = RepeatedSubsampleEstimator()
    for value in (1.0, 2.0, 3.0):
        est.add_subsample(value)
    assert est.ipc() == pytest.approx(2.0)
    # sample std = 1, halfwidth = 1.96 / sqrt(3)
    assert est.ci_halfwidth() == pytest.approx(1.96 / math.sqrt(3))
    assert est.relative_halfwidth() == \
        pytest.approx(1.96 / math.sqrt(3) / 2.0)


def test_estimator_single_subsample_has_infinite_ci():
    est = RepeatedSubsampleEstimator()
    est.add_subsample(1.5)
    assert est.ipc() == 1.5
    assert math.isinf(est.ci_halfwidth())


def test_estimator_rejects_nonpositive():
    with pytest.raises(ValueError):
        RepeatedSubsampleEstimator().add_subsample(0.0)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0.1, 5.0, allow_nan=False), min_size=2,
                max_size=12))
def test_ci_halfwidth_shrinks_with_repeated_subsampling(ipcs):
    # doubling the evidence (same empirical distribution, twice the
    # subsample count) must strictly shrink the confidence interval:
    # the squared-halfwidth ratio is (n-1)/(2n-1) < 1, strictly
    base = RepeatedSubsampleEstimator()
    doubled = RepeatedSubsampleEstimator()
    for value in ipcs:
        base.add_subsample(value)
        doubled.add_subsample(value)
        doubled.add_subsample(value)
    if base.ci_halfwidth() > 1e-9:
        assert doubled.ci_halfwidth() < base.ci_halfwidth()
    else:
        # all-equal subsamples: both CIs collapse (modulo float eps)
        assert doubled.ci_halfwidth() < 1e-9


# ----------------------------------------------------------------------
# config + sampler

def test_config_validation():
    with pytest.raises(ValueError):
        RankedSetConfig(set_size=0)
    with pytest.raises(ValueError):
        RankedSetConfig(cycles=0)
    with pytest.raises(ValueError):
        RankedSetConfig(interval_length=0)


def test_rankedset_single_interval_degrades_gracefully():
    # one giant interval: every cycle measures the same member, the
    # subsample variance is zero, and the CI must come out zero (not a
    # divide-by-zero, not infinity in the stored extra)
    sampler = RankedSetSampler(RankedSetConfig(
        interval_length=50_000_000, set_size=5, cycles=3,
        warmup_length=100))
    result = sampler.run(make_controller())
    assert result.ipc > 0
    assert result.extra["num_intervals"] == 1
    assert len(result.extra["subsample_ipcs"]) == 3
    assert result.extra["ipc_ci_halfwidth"] == pytest.approx(0.0)
    json.dumps(result.canonical_dict())


def test_rankedset_reports_confidence_interval():
    sampler = RankedSetSampler(RankedSetConfig(
        interval_length=1000, set_size=5, cycles=3,
        warmup_length=1000))
    result = sampler.run(make_controller())
    assert len(result.extra["subsample_ipcs"]) == 3
    halfwidth = result.extra["ipc_ci_halfwidth"]
    assert halfwidth is None or halfwidth >= 0.0
    json.dumps(result.canonical_dict())
