"""Tests for two-phase stratified sampling (allocation + sampler)."""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import (StratifiedConfig, StratifiedSampler,
                            neyman_allocation, quantile_strata,
                            systematic_pick)
from repro.workloads import SUITE_MACHINE_KWARGS, WorkloadBuilder
from repro.sampling import SimulationController


def tiny_workload(phases=6):
    builder = WorkloadBuilder("tiny-strat", seed=11)
    for i in range(phases):
        if i % 2 == 0:
            builder.phase("crc", iters=3000)
        else:
            builder.phase("stream", n=256, iters=8)
    return builder.build()


def make_controller():
    return SimulationController(tiny_workload(),
                                machine_kwargs=SUITE_MACHINE_KWARGS)


# ----------------------------------------------------------------------
# quantile strata

def test_quantile_strata_basic_quartiles():
    scores = [float(i) for i in range(8)]
    strata = quantile_strata(scores, 4)
    assert strata == [0, 0, 1, 1, 2, 2, 3, 3]


def test_quantile_strata_ties_share_a_stratum():
    scores = [1.0, 1.0, 1.0, 2.0]
    strata = quantile_strata(scores, 4)
    assert strata[0] == strata[1] == strata[2]
    assert strata[3] != strata[0]


def test_quantile_strata_all_equal_single_stratum():
    assert quantile_strata([3.0] * 10, 4) == [0] * 10


def test_quantile_strata_single_interval():
    assert quantile_strata([1.0], 4) == [0]


def test_quantile_strata_empty():
    assert quantile_strata([], 4) == []


def test_quantile_strata_rejects_bad_k():
    with pytest.raises(ValueError):
        quantile_strata([1.0], 0)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                max_size=40),
       st.integers(1, 8))
def test_quantile_strata_ids_dense_and_ordered(scores, n_strata):
    strata = quantile_strata(scores, n_strata)
    used = set(strata)
    # dense ids in [0, k), k bounded by both inputs
    assert used == set(range(len(used)))
    assert len(used) <= min(n_strata, len(scores))
    # ids ascend with score: a higher-scoring interval never sits in a
    # lower stratum
    for i in range(len(scores)):
        for j in range(len(scores)):
            if scores[i] < scores[j]:
                assert strata[i] <= strata[j]


# ----------------------------------------------------------------------
# Neyman allocation

@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50),
                          st.floats(0, 10, allow_nan=False)),
                min_size=1, max_size=10),
       st.integers(0, 120))
def test_neyman_allocation_invariants(strata, budget):
    sizes = [size for size, _ in strata]
    stds = [std for _, std in strata]
    allocation = neyman_allocation(sizes, stds, budget)
    # sums to exactly the feasible budget, never over-draws a stratum
    assert sum(allocation) == min(budget, sum(sizes))
    for n_h, size in zip(allocation, sizes):
        assert 0 <= n_h <= size
    # coverage floor: with enough budget every non-empty stratum is hit
    nonempty = sum(1 for size in sizes if size > 0)
    if budget >= nonempty:
        for n_h, size in zip(allocation, sizes):
            if size > 0:
                assert n_h >= 1


def test_neyman_zero_variance_falls_back_to_proportional():
    # all-homogeneous strata: the S_h weights vanish; allocation must
    # degrade to proportional-by-size, not divide by zero
    allocation = neyman_allocation([10, 20, 30], [0.0, 0.0, 0.0], 6)
    assert sum(allocation) == 6
    assert allocation[2] >= allocation[1] >= allocation[0] >= 1


def test_neyman_weights_follow_size_times_std():
    allocation = neyman_allocation([10, 10], [1.0, 9.0], 10)
    assert sum(allocation) == 10
    assert allocation[1] > allocation[0]


def test_neyman_budget_exceeding_population_is_clamped():
    assert neyman_allocation([2, 3], [1.0, 1.0], 100) == [2, 3]


def test_neyman_rejects_mismatched_or_negative():
    with pytest.raises(ValueError):
        neyman_allocation([1, 2], [1.0], 3)
    with pytest.raises(ValueError):
        neyman_allocation([-1], [1.0], 3)
    with pytest.raises(ValueError):
        neyman_allocation([1], [-1.0], 3)


# ----------------------------------------------------------------------
# systematic picks

@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=50,
                unique=True),
       st.integers(0, 60))
def test_systematic_pick_distinct_members(members, count):
    picks = systematic_pick(members, count)
    assert len(picks) == min(count, len(members))
    assert len(set(picks)) == len(picks)
    assert set(picks) <= set(members)


def test_systematic_pick_midpoint_spread():
    assert systematic_pick(list(range(10)), 2) == [2, 7]
    assert systematic_pick(list(range(10)), 10) == list(range(10))


# ----------------------------------------------------------------------
# config validation

def test_config_validation():
    with pytest.raises(ValueError):
        StratifiedConfig(budget=0)
    with pytest.raises(ValueError):
        StratifiedConfig(n_strata=0)
    with pytest.raises(ValueError):
        StratifiedConfig(interval_length=0)


# ----------------------------------------------------------------------
# graceful degradation of the full sampler (regression: single
# interval / zero-variance strata must not divide by zero)

def test_stratified_single_interval_degrades_gracefully():
    # an interval length far beyond the workload: the cheap pass sees
    # exactly one interval, one stratum, and the whole budget lands on
    # it without any divide-by-zero
    sampler = StratifiedSampler(StratifiedConfig(
        interval_length=50_000_000, n_strata=4, budget=8,
        warmup_length=100))
    result = sampler.run(make_controller())
    assert result.ipc > 0
    assert result.extra["num_intervals"] == 1
    assert result.extra["num_strata"] == 1
    assert result.timed_intervals == 1
    # the result must stay JSON-clean for the store
    json.dumps(result.canonical_dict())


def test_stratified_budget_above_population_measures_everything():
    sampler = StratifiedSampler(StratifiedConfig(
        interval_length=50_000_000, n_strata=4, budget=64,
        warmup_length=100))
    result = sampler.run(make_controller())
    assert result.timed_intervals == result.extra["num_intervals"]


def test_stratified_tracks_reference_on_tiny_workload():
    controller = make_controller()
    from repro.sampling import FullTiming
    reference = FullTiming().run(make_controller())
    sampler = StratifiedSampler(StratifiedConfig(
        interval_length=1000, n_strata=4, budget=12,
        warmup_length=1000))
    result = sampler.run(controller)
    assert result.timed_intervals <= 12  # never exceeds the budget
    assert math.isfinite(result.ipc)
    assert abs(result.ipc - reference.ipc) / reference.ipc < 0.5
