"""Tests for the sampling policies and the controller."""

import pytest

from repro.workloads import WorkloadBuilder, load_benchmark, \
    SUITE_MACHINE_KWARGS
from repro.sampling import (CostModel, DynamicSampler,
                            DynamicSamplingConfig, FullTiming,
                            SimPointConfig, SimPointSampler,
                            SimulationController, SmartsConfig,
                            SmartsSampler, accuracy_error, dynamic_config,
                            full_sweep)


def tiny_workload(name="tiny", phases=6):
    builder = WorkloadBuilder(name, seed=3)
    for i in range(phases):
        if i % 2 == 0:
            builder.phase("crc", iters=4000)
        else:
            builder.phase("stream", n=512, iters=8)
        builder.phase("console_io", nbytes=16, reps=2)
    return builder.build()


def make_controller(workload=None, **kwargs):
    return SimulationController(workload or tiny_workload(),
                                machine_kwargs=SUITE_MACHINE_KWARGS,
                                **kwargs)


# ----------------------------------------------------------------------
# controller

def test_controller_mode_accounting():
    controller = make_controller()
    controller.run_fast(1000)
    controller.run_profile(1000)
    controller.run_warming(1000)
    controller.run_timed(1000)
    b = controller.breakdown
    assert b.fast_instructions >= 1000
    assert b.profile_instructions >= 1000
    assert b.warming_instructions >= 1000
    assert b.timed_instructions >= 1000
    assert b.total_instructions == controller.icount
    assert b.total_wall_seconds > 0


def test_controller_timed_returns_cycles():
    controller = make_controller()
    executed, cycles = controller.run_timed(2000)
    assert executed >= 2000
    assert cycles > executed / 3.1  # IPC can't beat the width


def test_controller_take_profile():
    controller = make_controller()
    controller.run_profile(2000)
    counts = controller.take_profile()
    assert sum(counts.values()) >= 2000
    assert controller.take_profile() == {}


def test_controller_stat_reads():
    controller = make_controller()
    controller.run_fast(100_000)
    assert controller.read_stat("EXC") > 0
    with pytest.raises(KeyError):
        controller.read_stat("NOPE")


def test_controller_feedback_updates_guest_clock():
    controller = make_controller(feedback=True)
    controller.run_timed(2000)
    assert controller.machine.state.cycles > 0
    assert controller.system.timer.now == controller.machine.state.cycles


def test_controller_no_feedback_by_default():
    controller = make_controller()
    controller.run_timed(2000)
    assert controller.machine.state.cycles == 0


# ----------------------------------------------------------------------
# full timing

def test_full_timing_runs_everything_detailed():
    controller = make_controller()
    result = FullTiming(chunk=4096).run(controller)
    assert controller.finished
    assert result.fast_instructions == 0
    assert result.timed_instructions == result.total_instructions
    assert 0 < result.ipc <= 3.0
    assert result.policy == "full"


# ----------------------------------------------------------------------
# SMARTS

def test_smarts_samples_systematically():
    controller = make_controller()
    result = SmartsSampler(SmartsConfig(1000, 200, 50)).run(controller)
    assert controller.finished
    assert result.timed_intervals > 5
    assert result.warming_instructions > result.timed_instructions
    assert 0 < result.ipc <= 3.0
    assert "cpi_confidence" in result.extra


def test_smarts_accuracy_on_tiny_workload():
    workload = tiny_workload()
    full = FullTiming().run(make_controller(workload))
    smarts = SmartsSampler(SmartsConfig(1000, 200, 50)).run(
        make_controller(workload))
    assert accuracy_error(smarts.ipc, full.ipc) < 0.15


# ----------------------------------------------------------------------
# Dynamic Sampling

def test_dynamic_config_validation():
    with pytest.raises(ValueError):
        DynamicSamplingConfig(sensitivity=-1)
    with pytest.raises(ValueError):
        DynamicSamplingConfig(interval_length=0)
    with pytest.raises(ValueError):
        DynamicSamplingConfig(max_func=0)
    with pytest.raises(ValueError):
        DynamicSamplingConfig(variables=("BOGUS",))


def test_dynamic_config_display():
    config = dynamic_config("CPU", 300, "1M", None)
    assert config.display == "CPU-300-1M-inf"
    config = dynamic_config("IO", 100, "10M", 10)
    assert config.display == "IO-100-10M-10"


def test_dynamic_sampler_takes_samples():
    config = DynamicSamplingConfig(variables=("EXC",), sensitivity=1.0,
                                   interval_length=1000, max_func=10,
                                   warmup_length=1000)
    controller = make_controller()
    result = DynamicSampler(config).run(controller)
    assert controller.finished
    assert result.timed_intervals >= 2
    assert 0 < result.ipc <= 3.0
    # most instructions ran at full speed
    assert result.fast_instructions > result.timed_instructions


def test_dynamic_max_func_forces_sampling():
    # With an impossible sensitivity, only max_func triggers sampling.
    config = DynamicSamplingConfig(variables=("CPU",), sensitivity=1e9,
                                   interval_length=1000, max_func=5,
                                   warmup_length=500)
    controller = make_controller()
    result = DynamicSampler(config).run(controller)
    total_intervals = result.total_instructions / 1000
    assert result.timed_intervals >= total_intervals / 10 - 2


def test_dynamic_no_max_func_no_signal_no_samples():
    config = DynamicSamplingConfig(variables=("CPU",), sensitivity=1e9,
                                   interval_length=1000, max_func=None)
    controller = make_controller()
    result = DynamicSampler(config).run(controller)
    assert result.timed_intervals == 0
    assert result.ipc == pytest.approx(1.0)  # documented fallback


def test_dynamic_multivariable_extension():
    config = DynamicSamplingConfig(variables=("CPU", "IO"),
                                   sensitivity=1.0,
                                   interval_length=1000, max_func=None,
                                   warmup_length=500)
    controller = make_controller()
    result = DynamicSampler(config).run(controller)
    assert result.timed_intervals >= 1
    assert "CPU+IO" in result.policy


def test_full_sweep_grid_size():
    grid = full_sweep()
    assert len(grid) == 3 * 3 * 3 * 2
    labels = {config.display for config in grid}
    assert "CPU-300-1M-inf" in labels
    assert "EXC-500-100M-10" in labels


# ----------------------------------------------------------------------
# SimPoint

def test_simpoint_end_to_end():
    workload = tiny_workload(phases=8)
    controller = make_controller(workload)
    config = SimPointConfig(interval_length=1000, max_clusters=10,
                            warmup_length=1000)
    result = SimPointSampler(config).run(controller)
    assert result.timed_intervals >= 2
    assert result.profile_instructions > 0
    assert 0 < result.ipc <= 3.0
    assert result.extra["num_simpoints"] == result.timed_intervals
    # SimPoint charges only warming+timed; profiling cost is separate
    assert result.extra["modeled_seconds_with_profiling"] \
        > result.modeled_seconds


def test_simpoint_accuracy_on_tiny_workload():
    workload = tiny_workload(phases=8)
    full = FullTiming().run(make_controller(workload))
    config = SimPointConfig(interval_length=1000, max_clusters=10,
                            warmup_length=2000)
    simpoint = SimPointSampler(config).run(make_controller(workload))
    assert accuracy_error(simpoint.ipc, full.ipc) < 0.25


# ----------------------------------------------------------------------
# cost model / result plumbing

def test_cost_model_modeled_seconds():
    model = CostModel(fast_ips=100e6, profile_ips=10e6, warming_ips=2e6,
                      timing_ips=0.5e6)
    seconds = model.modeled_seconds(fast=100e6, profile=10e6,
                                    warming=2e6, timed=0.5e6)
    assert seconds == pytest.approx(4.0)


def test_policy_result_roundtrip():
    controller = make_controller()
    result = FullTiming(chunk=4096).run(controller)
    from repro.sampling import PolicyResult
    clone = PolicyResult.from_dict(result.to_dict())
    assert clone.ipc == result.ipc
    assert clone.policy == result.policy
    assert clone.extra == result.extra


def test_results_are_deterministic():
    workload = tiny_workload()
    config = dynamic_config("EXC", 100, "1M", 10)
    first = DynamicSampler(config).run(make_controller(workload))
    second = DynamicSampler(config).run(make_controller(workload))
    assert first.ipc == second.ipc
    assert first.timed_intervals == second.timed_intervals
    assert first.total_instructions == second.total_instructions


def test_smarts_matched_sampling_stops_early():
    """With a loose confidence target, SMARTS stops measuring early
    and fast-forwards the rest with warming only."""
    workload = tiny_workload(phases=10)
    everything = SmartsSampler(SmartsConfig(1000, 200, 50)).run(
        make_controller(workload))
    matched = SmartsSampler(SmartsConfig(
        1000, 200, 50, target_confidence=0.5, min_units=5)).run(
        make_controller(workload))
    assert matched.timed_intervals < everything.timed_intervals
    assert matched.extra["confident_after_units"] is not None
    assert matched.timed_instructions < everything.timed_instructions
    # both still estimate the same machine
    assert abs(matched.ipc - everything.ipc) / everything.ipc < 0.3


def test_smarts_matched_sampling_disabled_by_default():
    workload = tiny_workload()
    result = SmartsSampler(SmartsConfig(1000, 200, 50)).run(
        make_controller(workload))
    assert result.extra["confident_after_units"] is None
