"""Tests for memory-access-vector (MAV) features."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import mav_matrix
from repro.sampling.simpoint import stride_bucket, touch_histograms


# ----------------------------------------------------------------------
# stride buckets

def test_stride_bucket_zero_is_its_own_bucket():
    assert stride_bucket(0) == 0


def test_stride_bucket_log2_magnitude():
    assert stride_bucket(1) == 1
    assert stride_bucket(-1) == 1
    assert stride_bucket(2) == 2
    assert stride_bucket(3) == 2
    assert stride_bucket(4) == 3
    assert stride_bucket(7) == 3
    assert stride_bucket(8) == 4


def test_stride_bucket_saturates():
    assert stride_bucket(1 << 40) == 15
    assert stride_bucket(-(1 << 40)) == 15


# ----------------------------------------------------------------------
# touch histograms

def test_touch_histograms_counts_pages_and_strides():
    pages, strides = touch_histograms([7, 7, 8, 7])
    assert pages == {7: 3, 8: 1}
    # deltas: 0 (7->7), 1 (7->8), 1 (8->7 magnitude)
    assert strides == {0: 1, 1: 2}


def test_touch_histograms_empty():
    assert touch_histograms([]) == ({}, {})


# ----------------------------------------------------------------------
# matrix construction

def test_mav_matrix_rows_are_l1_normalized_per_block():
    pages = [{1: 3, 2: 1}, {2: 4}]
    strides = [{0: 2}, {0: 1, 3: 1}]
    matrix = mav_matrix(pages, strides)
    assert matrix.shape == (2, 2 + 2)  # pages {1,2} + buckets {0,3}
    # each half of each row sums to 1 (touched rows)
    np.testing.assert_allclose(matrix[:, :2].sum(axis=1), [1.0, 1.0])
    np.testing.assert_allclose(matrix[:, 2:].sum(axis=1), [1.0, 1.0])


def test_mav_matrix_weight_scales_everything():
    pages = [{1: 1}]
    strides = [{0: 1}]
    np.testing.assert_allclose(mav_matrix(pages, strides, weight=0.25),
                               0.25 * mav_matrix(pages, strides))


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(
        st.dictionaries(st.integers(0, 50), st.integers(1, 9),
                        min_size=1, max_size=6),
        st.dictionaries(st.integers(0, 15), st.integers(1, 9),
                        min_size=1, max_size=6)),
    min_size=1, max_size=6),
    st.randoms(use_true_random=False))
def test_mav_matrix_permutation_stable(hists, rng):
    """Dict insertion order must never leak into the feature matrix.

    The MAV columns come from key unions of per-interval dicts; the
    matrix must be identical however those dicts were populated.
    """
    pages = [dict(p) for p, _ in hists]
    strides = [dict(s) for _, s in hists]

    def shuffled(mapping):
        items = list(mapping.items())
        rng.shuffle(items)
        return dict(items)

    baseline = mav_matrix(pages, strides)
    permuted = mav_matrix([shuffled(p) for p in pages],
                          [shuffled(s) for s in strides])
    np.testing.assert_array_equal(baseline, permuted)


def test_mav_matrix_empty_intervals_are_zero_rows():
    matrix = mav_matrix([{1: 1}, {}], [{0: 1}, {}])
    np.testing.assert_allclose(matrix[1], 0.0)


def test_mav_matrix_no_intervals():
    assert mav_matrix([], []).shape[0] == 0
