"""Tests for IPC estimators and accuracy metrics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import (MeanCpiEstimator, SegmentedIpcEstimator,
                            WeightedClusterEstimator, accuracy_error,
                            speedup)


# ----------------------------------------------------------------------
# segmented estimator (Dynamic Sampling)

def test_segmented_single_timed_interval():
    est = SegmentedIpcEstimator()
    est.add_timed(1000, 2.0)
    assert est.ipc() == pytest.approx(2.0)


def test_segmented_functional_inherits_last_timed():
    est = SegmentedIpcEstimator()
    est.add_timed(1000, 2.0)
    est.add_functional(3000)   # gets IPC 2.0
    assert est.ipc() == pytest.approx(2.0)
    est.add_timed(1000, 1.0)
    est.add_functional(1000)   # gets IPC 1.0
    # cycles: 4000/2 + 2000/1 = 4000; instructions 6000
    assert est.ipc() == pytest.approx(6000 / 4000)


def test_segmented_leading_functional_backfilled():
    est = SegmentedIpcEstimator()
    est.add_functional(5000)
    est.add_timed(1000, 3.0)
    assert est.ipc() == pytest.approx(3.0)


def test_segmented_no_measurements_assumes_unity():
    est = SegmentedIpcEstimator()
    est.add_functional(1000)
    assert est.ipc() == pytest.approx(1.0)


def test_segmented_empty():
    assert SegmentedIpcEstimator().ipc() == 0.0


def test_segmented_counts():
    est = SegmentedIpcEstimator()
    est.add_functional(100)
    est.add_timed(50, 1.5)
    assert est.total_instructions == 150


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 10000),
                          st.floats(0.1, 3.0)), min_size=1, max_size=20))
def test_segmented_ipc_bounded_by_measurements(segments):
    est = SegmentedIpcEstimator()
    for instructions, ipc in segments:
        est.add_timed(instructions, ipc)
    lo = min(ipc for _, ipc in segments)
    hi = max(ipc for _, ipc in segments)
    assert lo - 1e-9 <= est.ipc() <= hi + 1e-9


# ----------------------------------------------------------------------
# weighted cluster estimator (SimPoint)

def test_weighted_cluster_single():
    est = WeightedClusterEstimator()
    est.add_cluster(1.0, 2.0)
    assert est.ipc() == pytest.approx(2.0)


def test_weighted_cluster_harmonic_combination():
    est = WeightedClusterEstimator()
    est.add_cluster(0.5, 1.0)
    est.add_cluster(0.5, 3.0)
    # half the instructions at IPC 1, half at IPC 3:
    # cycles ~ 0.5/1 + 0.5/3 = 2/3 -> ipc = 1.5
    assert est.ipc() == pytest.approx(1.5)


def test_weighted_cluster_rejects_negative_weight():
    with pytest.raises(ValueError):
        WeightedClusterEstimator().add_cluster(-0.1, 1.0)


def test_weighted_cluster_empty():
    assert WeightedClusterEstimator().ipc() == 0.0


# ----------------------------------------------------------------------
# mean-CPI estimator (SMARTS)

def test_mean_cpi_weighted_by_instructions():
    est = MeanCpiEstimator()
    est.add_unit(100, 100)   # CPI 1
    est.add_unit(300, 900)   # CPI 3
    # weighted: 1000 cycles / 400 instr = 2.5
    assert est.cpi() == pytest.approx(2.5)
    assert est.ipc() == pytest.approx(0.4)


def test_mean_cpi_confidence_shrinks_with_samples():
    wide = MeanCpiEstimator()
    for cpi in (1.0, 2.0):
        wide.add_unit(100, int(100 * cpi))
    narrow = MeanCpiEstimator()
    for _ in range(50):
        narrow.add_unit(100, 100)
        narrow.add_unit(100, 200)
    assert narrow.confidence_interval() < wide.confidence_interval()


def test_mean_cpi_insufficient_samples():
    est = MeanCpiEstimator()
    assert est.confidence_interval() == math.inf
    est.add_unit(100, 100)
    assert est.confidence_interval() == math.inf
    assert est.relative_error_bound() == math.inf


def test_mean_cpi_empty():
    est = MeanCpiEstimator()
    assert est.cpi() == 0.0
    assert est.ipc() == 0.0


# ----------------------------------------------------------------------
# metrics

def test_accuracy_error():
    assert accuracy_error(1.1, 1.0) == pytest.approx(0.1)
    assert accuracy_error(0.9, 1.0) == pytest.approx(0.1)
    assert accuracy_error(1.0, 0.0) == math.inf


def test_speedup():
    assert speedup(100.0, 10.0) == pytest.approx(10.0)
    assert speedup(100.0, 0.0) == math.inf
