"""Figure 6: mean IPC per timing policy with accuracy-error labels."""

from conftest import one_shot

from repro.harness import build_figure6


def test_fig6_ipc_summary(benchmark, artifact):
    text, errors = one_shot(benchmark, build_figure6)
    artifact("fig6_ipc_summary", text)
    # short 1M intervals beat long 100M intervals without a
    # functional-interval bound (the paper's 24%-error case)
    assert errors["CPU-300-1M-10"] is not None
    assert errors["full"] in (0.0, None) or errors["full"] < 1e-9
