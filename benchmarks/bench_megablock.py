"""Megablock-tier benchmark: chained superblock dispatch vs fused.

Produces the ``BENCH_megablock.json`` trajectory: guest
instructions/sec of the megablock tier (hot fused superblocks chained
into direct-threaded megablocks) against the same fast-path engine
with the tier disabled (``REPRO_MEGABLOCKS=0``), in timed and
functional-warming event mode on the loop-dominated suite, with
per-benchmark and geomean speedups.

This is a thin wrapper over ``repro.harness.megablock`` (also
reachable as ``python -m repro bench --suite megablock``) so the
benchmark directory stays the one-stop shop for every figure/number
the repo produces::

    python benchmarks/bench_megablock.py                   # print table
    python benchmarks/bench_megablock.py --update-baseline # rewrite JSON
    python benchmarks/bench_megablock.py --check           # CI perf gate
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    default_baseline = os.path.join(os.path.dirname(__file__),
                                    "BENCH_megablock.json")
    argv = sys.argv[1:]
    if not any(arg.startswith("--baseline") for arg in argv):
        argv += ["--baseline", default_baseline]
    raise SystemExit(main(["bench", "--suite", "megablock"] + argv))
