"""Figure 4: SimPoint-selected simulation points vs the phases that
Dynamic Sampling detects at run time (PN ~= SPN)."""

from conftest import one_shot

from repro.harness import build_figure4


def test_fig4_phase_match(benchmark, artifact):
    text, data = one_shot(benchmark, lambda: build_figure4("perlbmk"))
    artifact("fig4_phase_match", text)
    assert data["simpoints"], "SimPoint chose no points"
    assert data["dynamic"], "Dynamic Sampling detected no phases"
    # most dynamically detected phases coincide with a simpoint
    assert data["match_score"] >= 0.5
