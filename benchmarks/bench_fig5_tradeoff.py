"""Figure 5: accuracy error vs simulation speedup for every policy,
with the Pareto frontier (the paper's headline figure)."""

from conftest import one_shot

from repro.harness import build_figure5


def test_fig5_tradeoff(benchmark, artifact):
    text, data = one_shot(benchmark, build_figure5)
    artifact("fig5_tradeoff", text)
    points = {label: (err, speed) for label, err, speed in data["points"]}
    # paper shapes that must hold at any scale:
    # SMARTS is the most accurate sampler...
    smarts_err = points["smarts"][0]
    assert smarts_err <= min(err for label, (err, _) in points.items()
                             if label != "smarts") + 3.0
    # ...SimPoint (ignoring profiling) is faster than SMARTS...
    assert points["simpoint"][1] > points["smarts"][1]
    # ...profiling cost erases most of SimPoint's advantage...
    assert points["simpoint+prof"][1] < points["simpoint"][1]
    # ...and the fast Dynamic Sampling configs beat SMARTS on speed.
    assert points["IO-100-1M-inf"][1] > points["smarts"][1]
    assert points["CPU-300-1M-inf"][1] > points["smarts"][1]
