"""Figure 7: simulation time per policy (modeled host seconds)."""

from conftest import one_shot

from repro.harness import build_figure7


def test_fig7_time_summary(benchmark, artifact):
    text, speedups = one_shot(benchmark, build_figure7)
    artifact("fig7_time_summary", text)
    # cost-structure shapes from the paper:
    assert speedups["full"] == 1.0
    # SMARTS is bounded by continuous functional warming
    assert 2.0 < speedups["smarts"] < 12.0
    # SimPoint without profiling is the fastest conventional technique;
    # adding the profiling pass collapses its advantage
    assert speedups["simpoint"] > speedups["simpoint+prof"]
    # short-interval unlimited Dynamic Sampling outruns SMARTS
    assert speedups["IO-100-1M-inf"] > speedups["smarts"]
