"""Overhead guard: instrumentation must be free when tracing is off.

The ``repro.obs`` seams in the controller and the dynamic sampler run
on every interval; with no tracer installed and metrics disabled (the
default) they must not slow the simulator down.  The guard compares a
fresh ``full``-policy run against the pre-instrumentation wall-clock
recorded in the committed result cache (``benchmarks/.cache``): the
best of three fresh runs must stay within 5 %.

If the cache entry is missing (e.g. after a cache-version bump) the
first run of this guard repopulates it through the normal
:func:`run_policy` machinery and the comparison becomes a same-machine
regression check for later runs.

The telemetry/profiler additions extend the contract:

* profiler disabled — **structurally** free: the translator returns
  its compiled ``_block`` closures unwrapped, so the dispatch loop has
  no per-dispatch hook to pay for (checked by inspecting the returned
  closure, not by timing), and an enable→disable cycle leaves no
  residual per-dispatch cost (tight re-dispatch loop of the same
  block before/after the cycle, interleaved, ≤ 1 %);
* heartbeat telemetry enabled — bounded: a run with a live heartbeat
  thread + metrics registry stays within 5 % of the same run with
  both off (interleaved A/B on the same machine in the same process,
  so the comparison is immune to host-speed differences).
"""

import time

from repro import obs
from repro.harness import default_store, make_spec, run_policy

BENCHMARK = "gzip"
SIZE = "small"  # long enough (~2 s) that wall-clock noise is small
TOLERANCE = 1.05
DISABLED_TOLERANCE = 1.01
TELEMETRY_TOLERANCE = 1.05


def test_tracing_disabled_overhead():
    assert not obs.current_tracer().enabled
    assert not obs.metrics_enabled()
    store = default_store()
    baseline = store.get(make_spec(BENCHMARK, "full", SIZE).key)
    if baseline is None:  # repopulate after a cache wipe
        baseline = run_policy(BENCHMARK, "full", size=SIZE, store=store)
    fresh = min(
        (run_policy(BENCHMARK, "full", size=SIZE, use_cache=False)
         for _ in range(3)),
        key=lambda result: result.wall_seconds)
    assert fresh.ipc == baseline.ipc  # instrumentation is behavioural no-op
    assert fresh.wall_seconds <= baseline.wall_seconds * TOLERANCE, (
        f"tracing-disabled run took {fresh.wall_seconds:.3f}s vs "
        f"{baseline.wall_seconds:.3f}s baseline "
        f"(> {TOLERANCE:.0%})")


def test_profiler_disabled_is_structurally_free():
    """Disabled profiling returns the raw compiled closure — there is
    no wrapper for the dispatch loop to call, so the per-dispatch cost
    of the disabled profiler is zero by construction."""
    from repro.isa import assemble
    from repro.kernel import boot
    from repro.obs import (disable_profiling, enable_profiling,
                           get_profiler)
    from repro.vm.translator import FLAVOR_FAST

    source = "_start:\n    li t0, 0\n    li t7, 0\n    ecall\n"

    def translate_entry():
        system = boot(assemble(source))
        machine = system.machine
        return machine.translator.translate(machine.state.pc,
                                            FLAVOR_FAST)

    assert not obs.profiling_enabled()
    assert translate_entry().fn.__name__ == "_block"

    profiler = enable_profiling()
    profiler.reset()
    try:
        assert translate_entry().fn.__name__ == "_profiled_block"
    finally:
        disable_profiling()
    # disable leaves no residue: fresh translations are raw again
    assert translate_entry().fn.__name__ == "_block"
    get_profiler().reset()


def _timed_run(spec):
    """Wall clock of one fresh (store-free) simulation job."""
    from repro.exec import execute_spec

    started = time.perf_counter()
    execute_spec(spec)
    return time.perf_counter() - started


def _interleaved_best(specs, runs=5):
    """Best-of-N wall clock per variant, with the variants alternated
    run-to-run so host-speed drift (frequency scaling, co-tenants)
    lands on both sides equally instead of biasing one block."""
    best = [float("inf")] * len(specs)
    for _ in range(runs):
        for i, spec in enumerate(specs):
            best[i] = min(best[i], _timed_run(spec))
    return best


def _dispatch_seconds(fn, state, pc0, loops=20000):
    """Wall clock of a tight re-dispatch loop of one compiled block."""
    started = time.perf_counter()
    for _ in range(loops):
        state.pc = pc0
        fn(state, 1)
    return time.perf_counter() - started


def test_enable_disable_cycle_leaves_no_residual_cost():
    """A profiler enable→disable cycle leaves the per-dispatch cost
    within 1 % of a closure translated before the cycle.  (That the
    disabled path has no hook at all is the structural test above;
    this times the toggle's residue — a leaked wrapper would show up
    here.)  A tight loop over the same block, with the two closures
    interleaved sample-by-sample, keeps host noise far below the 1 %
    tolerance a full-run comparison could never meet."""
    from repro.isa import assemble
    from repro.kernel import boot
    from repro.obs import disable_profiling, enable_profiling
    from repro.vm.translator import FLAVOR_FAST

    # a self-looping block: dispatching it never reaches a trap, so
    # the closure can be re-dispatched ad libitum
    system = boot(assemble(
        "_start:\n    li t0, 0\n    addi t0, t0, 1\n    j _start\n"))
    machine = system.machine
    state = machine.state
    pc0 = state.pc
    plain = machine.translator.translate(pc0, FLAVOR_FAST).fn
    enable_profiling()
    disable_profiling()
    cycled = machine.translator.translate(pc0, FLAVOR_FAST).fn
    assert cycled.__name__ == "_block"  # raw again after the cycle

    best_plain, best_cycled = float("inf"), float("inf")
    for _ in range(7):
        best_plain = min(best_plain,
                         _dispatch_seconds(plain, state, pc0))
        best_cycled = min(best_cycled,
                          _dispatch_seconds(cycled, state, pc0))
    state.pc = pc0
    assert best_cycled <= best_plain * DISABLED_TOLERANCE, (
        f"post-cycle dispatch loop took {best_cycled:.4f}s vs "
        f"{best_plain:.4f}s before the cycle "
        f"(> {DISABLED_TOLERANCE - 1:.0%} residual cost)")


def test_telemetry_enabled_overhead(tmp_path):
    """Interleaved A/B: heartbeat thread + metrics registry cost ≤ 5 %."""
    from dataclasses import replace

    assert not obs.metrics_enabled()
    off_spec = make_spec(BENCHMARK, "full", SIZE)
    on_spec = replace(off_spec, telemetry_dir=str(tmp_path / "run"))
    off, on = _interleaved_best([off_spec, on_spec])
    assert not obs.metrics_enabled()  # worker restored the flag
    beats = list((tmp_path / "run" / "workers").glob("*.json"))
    assert beats, "telemetry-enabled runs wrote no heartbeat files"
    assert on <= off * TELEMETRY_TOLERANCE, (
        f"telemetry-enabled run took {on:.3f}s vs {off:.3f}s with "
        f"telemetry off (> {TELEMETRY_TOLERANCE - 1:.0%})")
