"""Overhead guard: instrumentation must be free when tracing is off.

The ``repro.obs`` seams in the controller and the dynamic sampler run
on every interval; with no tracer installed and metrics disabled (the
default) they must not slow the simulator down.  The guard compares a
fresh ``full``-policy run against the pre-instrumentation wall-clock
recorded in the committed result cache (``benchmarks/.cache``): the
best of three fresh runs must stay within 5 %.

If the cache entry is missing (e.g. after a cache-version bump) the
first run of this guard repopulates it through the normal
:func:`run_policy` machinery and the comparison becomes a same-machine
regression check for later runs.
"""

from repro import obs
from repro.harness import default_store, make_spec, run_policy

BENCHMARK = "gzip"
SIZE = "small"  # long enough (~2 s) that wall-clock noise is small
TOLERANCE = 1.05


def test_tracing_disabled_overhead():
    assert not obs.current_tracer().enabled
    assert not obs.metrics_enabled()
    store = default_store()
    baseline = store.get(make_spec(BENCHMARK, "full", SIZE).key)
    if baseline is None:  # repopulate after a cache wipe
        baseline = run_policy(BENCHMARK, "full", size=SIZE, store=store)
    fresh = min(
        (run_policy(BENCHMARK, "full", size=SIZE, use_cache=False)
         for _ in range(3)),
        key=lambda result: result.wall_seconds)
    assert fresh.ipc == baseline.ipc  # instrumentation is behavioural no-op
    assert fresh.wall_seconds <= baseline.wall_seconds * TOLERANCE, (
        f"tracing-disabled run took {fresh.wall_seconds:.3f}s vs "
        f"{baseline.wall_seconds:.3f}s baseline "
        f"(> {TOLERANCE:.0%})")
