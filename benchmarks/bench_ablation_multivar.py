"""Ablation: monitoring several VM statistics at once.

The paper closes with "it is very important to identify the right
variable(s) to monitor"; this ablation OR-combines CPU and IO (a phase
change on either triggers a sample) and compares against each variable
alone.
"""

from conftest import one_shot

from repro.analysis import format_table
from repro.harness import run_policy
from repro.sampling import (DynamicSampler, DynamicSamplingConfig,
                            SimulationController, accuracy_error)
from repro.timing import TimingConfig
from repro.workloads import SUITE_MACHINE_KWARGS, load_benchmark

BENCHES = ("gzip", "mcf", "perlbmk", "swim")


def run_multivar(name, variables):
    workload = load_benchmark(name)
    controller = SimulationController(
        workload, timing_config=TimingConfig.small(),
        machine_kwargs=SUITE_MACHINE_KWARGS)
    config = DynamicSamplingConfig(
        variables=variables, sensitivity=3.0 if "CPU" in variables
        else 1.0, interval_length=1000, max_func=None,
        warmup_length=5000)
    return DynamicSampler(config).run(controller)


def build():
    full = {name: run_policy(name, "full") for name in BENCHES}
    rows = []
    data = {}
    for label, runner in (
            ("CPU-300", lambda n: run_policy(n, "CPU-300-1M-inf")),
            ("IO-100", lambda n: run_policy(n, "IO-100-1M-inf")),
            ("CPU+IO", lambda n: run_multivar(n, ("CPU", "IO")))):
        errors = []
        samples = 0
        for name in BENCHES:
            result = runner(name)
            errors.append(accuracy_error(result.ipc, full[name].ipc))
            samples += result.timed_intervals
        mean_error = sum(errors) / len(errors)
        rows.append((label, f"{mean_error * 100:.2f}", samples))
        data[label] = mean_error
    text = format_table(
        ("monitored variable(s)", "mean error %", "timed intervals"),
        rows, title="Ablation: combined-variable monitoring (1M, inf)")
    return text, data


def test_ablation_multivar(benchmark, artifact):
    text, data = one_shot(benchmark, build)
    artifact("ablation_multivar", text)
    # the combination is at least as accurate as the worse single
    assert data["CPU+IO"] <= max(data["CPU-300"], data["IO-100"]) + 0.02
