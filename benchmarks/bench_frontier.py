"""Accuracy-vs-cost frontier benchmark: the sampling-policy zoo.

Produces the ``BENCH_frontier.json`` baseline: every policy family —
the paper's baselines (SMARTS, SimPoint, SimPoint+prof), its named
Dynamic Sampling points, and the statistical zoo (two-phase
stratified at several budgets, ranked-set at several cycle counts,
MAV-augmented SimPoint) — swept over the tiny suite and placed on one
accuracy-error vs speedup plane with the Pareto-efficient set marked.
All numbers are modeled (accuracy vs the full-timing reference; cost
from the per-mode MIPS cost model), so the payload is deterministic
and CI can gate it tightly.

This is a thin wrapper over ``repro.harness.frontier`` (also
reachable as ``python -m repro bench --suite frontier``)::

    python benchmarks/bench_frontier.py                   # table
    python benchmarks/bench_frontier.py --update-baseline # rewrite
    python benchmarks/bench_frontier.py --check           # CI gate
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    default_baseline = os.path.join(os.path.dirname(__file__),
                                    "BENCH_frontier.json")
    argv = sys.argv[1:]
    if not any(arg.startswith("--baseline") for arg in argv):
        argv += ["--baseline", default_baseline]
    raise SystemExit(main(["bench", "--suite", "frontier"] + argv))
