"""Figure 9: per-benchmark simulation time (modeled host seconds)."""

from conftest import one_shot

from repro.harness import build_figure9


def test_fig9_time_per_benchmark(benchmark, artifact):
    text, data = one_shot(benchmark, build_figure9)
    artifact("fig9_time_per_benchmark", text)
    for name, seconds in data["full"].items():
        # every sampling policy beats full timing on every benchmark
        assert data["smarts"][name] < seconds
        assert data["simpoint"][name] < seconds
        assert data["CPU-300-1M-inf"][name] < seconds
