"""Table 2: benchmark characteristics (ref input, instructions,
simpoints) measured at the reproduction scale."""

from conftest import one_shot

from repro.harness import build_table2, default_benchmarks


def test_table2_benchmarks(benchmark, artifact):
    names = default_benchmarks()
    text, data = one_shot(benchmark, lambda: build_table2(
        benchmarks=names))
    artifact("table2_benchmarks", text)
    assert len(data) == len(names)
    for record in data.values():
        assert record["instructions"] > 0
        assert record["simpoints"] > 0
