"""Figure 8: per-benchmark IPC for full timing, SMARTS, SimPoint and
Dynamic Sampling CPU-300-1M-inf."""

from conftest import one_shot

from repro.harness import build_figure8


def test_fig8_ipc_per_benchmark(benchmark, artifact):
    text, data = one_shot(benchmark, build_figure8)
    artifact("fig8_ipc_per_benchmark", text)
    full = data["full"]
    smarts = data["smarts"]
    # SMARTS tracks full timing closely on most benchmarks
    close = sum(1 for name in full
                if abs(smarts[name] - full[name]) / full[name] < 0.10)
    assert close >= len(full) * 0.7
