"""Shared fixtures for the figure/table benchmark targets.

Every target builds one of the paper's tables or figures through
:mod:`repro.harness.figures`.  Results of the underlying simulations are
memoised in ``benchmarks/.cache`` — the first run of a target simulates
(slow); later runs re-render from the cache.  ``REPRO_FULL_SUITE=1``
switches from the 8-benchmark quick subset to all 26 benchmarks.
"""

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture
def artifact():
    """Returns a writer that saves a rendered figure and echoes it."""
    def write(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n{text}\n[saved to {path}]")

    return write


def one_shot(benchmark, fn):
    """Run a figure builder exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
