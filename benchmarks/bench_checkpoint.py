"""Checkpoint-store benchmark: warm vs cold store wall clock.

Produces the ``BENCH_checkpoint.json`` trajectory: per-benchmark wall
clock of the SimPoint policies against a cold on-disk checkpoint store
and again against the warm store (every measurement in a fresh
subprocess), with the warm-vs-cold speedups, the restore-policy
geomean, and the delta-snapshot byte ratios.

This is a thin wrapper over ``repro.harness.checkpointbench`` (also
reachable as ``python -m repro bench --suite checkpoint``) so the
benchmark directory stays the one-stop shop for every figure/number
the repo produces::

    python benchmarks/bench_checkpoint.py                   # table
    python benchmarks/bench_checkpoint.py --update-baseline # rewrite
    python benchmarks/bench_checkpoint.py --check           # CI gate
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    default_baseline = os.path.join(os.path.dirname(__file__),
                                    "BENCH_checkpoint.json")
    argv = sys.argv[1:]
    if not any(arg.startswith("--baseline") for arg in argv):
        argv += ["--baseline", default_baseline]
    raise SystemExit(main(["bench", "--suite", "checkpoint"] + argv))
