"""Ablation: translation-cache eviction policy and the CPU signal.

The paper traces the statistics-track-phases idea to Dynamo's
fragment-cache flush heuristic.  Our cache defaults to per-block FIFO
eviction; this ablation compares it with Dynamo's flush-everything
policy as the source of the CPU monitored statistic.
"""

from conftest import one_shot

from repro.analysis import format_table
from repro.harness import run_policy
from repro.sampling import (DynamicSampler, SimulationController,
                            accuracy_error, dynamic_config)
from repro.timing import TimingConfig
from repro.workloads import SUITE_MACHINE_KWARGS, load_benchmark

BENCHES = ("gzip", "perlbmk", "swim", "crafty")


def run_with_policy(name, cache_policy):
    workload = load_benchmark(name)
    kwargs = dict(SUITE_MACHINE_KWARGS, code_cache_policy=cache_policy)
    controller = SimulationController(
        workload, timing_config=TimingConfig.small(),
        machine_kwargs=kwargs)
    sampler = DynamicSampler(dynamic_config("CPU", 300, "1M", None))
    return controller, sampler.run(controller)


def build():
    full = {name: run_policy(name, "full") for name in BENCHES}
    rows = []
    data = {}
    for cache_policy in ("fifo", "flush"):
        errors = []
        invalidations = 0
        samples = 0
        for name in BENCHES:
            controller, result = run_with_policy(name, cache_policy)
            errors.append(accuracy_error(result.ipc, full[name].ipc))
            invalidations += \
                controller.machine.stats.code_cache_invalidations
            samples += result.timed_intervals
        mean_error = sum(errors) / len(errors)
        rows.append((cache_policy, f"{mean_error * 100:.2f}",
                     invalidations, samples))
        data[cache_policy] = mean_error
    text = format_table(
        ("eviction policy", "mean error %", "invalidations", "samples"),
        rows, title="Ablation: translation-cache eviction policy "
                    "(CPU-300-1M-inf)")
    return text, data


def test_ablation_cache_policy(benchmark, artifact):
    text, data = one_shot(benchmark, build)
    artifact("ablation_cache_policy", text)
    assert set(data) == {"fifo", "flush"}
