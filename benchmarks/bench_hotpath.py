"""Hot-path execution-engine benchmark: fast path vs the oracle.

Produces the ``BENCH_hotpath.json`` trajectory: guest instructions/sec
of the fused superblock fast path and of the ``REPRO_SLOW_PATH=1``
per-instruction interpreter oracle, in timed and functional-warming
event mode, per suite size, with per-benchmark and geomean speedups.

This is a thin wrapper over ``repro.harness.hotpath`` (also reachable
as ``python -m repro bench``) so the benchmark directory stays the
one-stop shop for every figure/number the repo produces::

    python benchmarks/bench_hotpath.py                   # print table
    python benchmarks/bench_hotpath.py --update-baseline # rewrite JSON
    python benchmarks/bench_hotpath.py --check           # CI perf gate
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    default_baseline = os.path.join(os.path.dirname(__file__),
                                    "BENCH_hotpath.json")
    argv = sys.argv[1:]
    if not any(arg.startswith("--baseline") for arg in argv):
        argv += ["--baseline", default_baseline]
    raise SystemExit(main(["bench"] + argv))
