"""Figure 2: correlation between a VM-internal statistic (exceptions)
and the IPC of the running benchmark (perlbmk, as in the paper)."""

from conftest import one_shot

from repro.harness import build_figure2


def test_fig2_correlation(benchmark, artifact):
    text, data = one_shot(benchmark, lambda: build_figure2("perlbmk"))
    artifact("fig2_correlation", text)
    # the paper's claim: statistic changes track IPC changes
    assert data["correlation"] > 0.1
    assert data["intervals"] > 100
