"""Populate the result store for every policy x benchmark combination.

Run this once (``--jobs N`` spreads the grid over N worker processes);
every benchmark target afterwards reads from the store.  A killed run
can simply be re-invoked: completed cells are kept and only the
missing ones are simulated.  REPRO_FULL_SUITE=1 covers all 26
benchmarks.
"""
import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.exec import ExperimentEngine, failed_jobs, format_failure_summary
from repro.harness import (FIGURE5_POLICIES, FIGURE6_POLICIES,
                           default_benchmarks, make_spec)

POLICIES = list(dict.fromkeys(
    ["full"] + [p for p in FIGURE5_POLICIES if p != "simpoint+prof"]
    + [p for p in FIGURE6_POLICIES
       if p not in ("full", "smarts", "simpoint")]))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1)")
    parser.add_argument("--size", default="small")
    args = parser.parse_args()

    benchmarks = default_benchmarks()
    specs = [make_spec(bench, policy, args.size)
             for policy in POLICIES for bench in benchmarks]
    t0 = time.time()

    def progress(job_result, done, total):
        status = ("cached" if job_result.cached
                  else f"{job_result.wall_seconds:.1f}s")
        ipc = job_result.result.ipc if job_result.ok else float("nan")
        print(f"[{done}/{total}] {job_result.spec.job_id:40s} "
              f"ipc={ipc:.4f} ({status}, total {time.time() - t0:.0f}s)",
              flush=True)

    engine = ExperimentEngine(jobs=args.jobs, progress=progress)
    outcomes = engine.run(specs)
    failures = failed_jobs(outcomes)
    if failures:
        print(format_failure_summary(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
