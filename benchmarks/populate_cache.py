"""Populate the result cache for every policy x benchmark combination.

Run this once (it takes minutes); every benchmark target afterwards
reads from the cache.  REPRO_FULL_SUITE=1 covers all 26 benchmarks.
"""
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.harness import (FIGURE5_POLICIES, FIGURE6_POLICIES,
                           default_benchmarks, run_policy)

POLICIES = ["full"] + [p for p in FIGURE5_POLICIES if p != "simpoint+prof"] \
    + [p for p in FIGURE6_POLICIES
       if p not in ("full", "smarts", "simpoint")]

def main():
    benchmarks = default_benchmarks()
    total = len(benchmarks) * len(POLICIES)
    done = 0
    t0 = time.time()
    for policy in POLICIES:
        for bench in benchmarks:
            t1 = time.time()
            result = run_policy(bench, policy)
            done += 1
            print(f"[{done}/{total}] {policy:18s} {bench:10s} "
                  f"ipc={result.ipc:.4f} ({time.time()-t1:.1f}s, "
                  f"total {time.time()-t0:.0f}s)", flush=True)

if __name__ == "__main__":
    main()
