"""Ablation: warming length before each measurement interval.

DESIGN.md scales the paper's 1M-instruction warming to 5K because a
1:1 scaling (1K) cannot even fill the scaled L2 once; this ablation
measures that choice on SimPoint, whose point measurements sit after
long un-warmed fast-forwards and are therefore the most
warming-sensitive part of the reproduction.
"""

from dataclasses import replace

from conftest import one_shot

from repro.analysis import format_table
from repro.harness import run_policy
from repro.sampling import (SIMPOINT_PRESET, SimPointSampler,
                            SimulationController, accuracy_error)
from repro.timing import TimingConfig
from repro.workloads import SUITE_MACHINE_KWARGS, load_benchmark

BENCHES = ("mcf", "swim", "crafty")
WARMUPS = (500, 1000, 5000, 10000)


def run_with_warmup(name, warmup):
    workload = load_benchmark(name)
    controller = SimulationController(
        workload, timing_config=TimingConfig.small(),
        machine_kwargs=SUITE_MACHINE_KWARGS)
    config = replace(SIMPOINT_PRESET, warmup_length=warmup)
    return SimPointSampler(config).run(controller)


def build():
    full = {name: run_policy(name, "full") for name in BENCHES}
    rows = []
    data = {}
    for warmup in WARMUPS:
        errors = []
        for name in BENCHES:
            result = run_with_warmup(name, warmup)
            errors.append(accuracy_error(result.ipc, full[name].ipc))
        mean_error = sum(errors) / len(errors)
        rows.append((warmup, f"{mean_error * 100:.2f}"))
        data[warmup] = mean_error
    text = format_table(("warmup instructions", "mean error %"), rows,
                        title="Ablation: measurement warming length "
                              "(SimPoint)")
    return text, data


def test_ablation_warmup(benchmark, artifact):
    text, data = one_shot(benchmark, build)
    artifact("ablation_warmup", text)
    # warming a few thousand instructions must beat warming 500
    assert min(data[5000], data[10000]) < data[500]
