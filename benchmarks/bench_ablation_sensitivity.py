"""Ablation: Dynamic Sampling sensitivity and interval-length sweep.

Extends the paper's grid along the sensitivity axis for the CPU
variable, quantifying the accuracy/speed tradeoff the paper's Figure 5
samples at only three sensitivity values.
"""

from conftest import one_shot

from repro.analysis import format_table
from repro.harness import run_policy
from repro.sampling import accuracy_error

BENCHES = ("gzip", "mcf", "perlbmk", "swim")
SENSITIVITIES = (100, 300, 500, 1000)


def build():
    rows = []
    data = {}
    full = {name: run_policy(name, "full") for name in BENCHES}
    for sensitivity in SENSITIVITIES:
        key = f"CPU-{sensitivity}-1M-inf"
        errors = []
        intervals = 0
        for name in BENCHES:
            result = run_policy(name, key)
            errors.append(accuracy_error(result.ipc, full[name].ipc))
            intervals += result.timed_intervals
        mean_error = sum(errors) / len(errors)
        rows.append((f"S={sensitivity}%", f"{mean_error * 100:.2f}",
                     intervals))
        data[sensitivity] = mean_error
    text = format_table(("sensitivity", "mean error %",
                         "timed intervals (4 benchmarks)"), rows,
                        title="Ablation: CPU sensitivity sweep (1M, inf)")
    return text, data


def test_ablation_sensitivity(benchmark, artifact):
    text, data = one_shot(benchmark, build)
    artifact("ablation_sensitivity", text)
    # an absurdly high threshold must sample less and err more than the
    # best threshold in the sweep
    assert min(data.values()) <= data[1000] + 1e-9
