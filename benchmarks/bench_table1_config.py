"""Table 1: timing simulator parameters (paper and scaled variants)."""

from conftest import one_shot

from repro.harness import build_table1


def test_table1_config(benchmark, artifact):
    text, data = one_shot(benchmark, build_table1)
    artifact("table1_config", text)
    assert any("Fetch/Issue/Retire" in str(row) for row in data["rows"])
