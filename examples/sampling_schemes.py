"""Figure 3 as a live demo: how each mechanism schedules its intervals.

Prints the execution-mode schedule (fast / warming / detailed) that
SMARTS, SimPoint and Dynamic Sampling produce over the same benchmark,
making the paper's Figure 3 schematic concrete.

Run:  python examples/sampling_schemes.py
"""

from repro import (DynamicSampler, SIMPOINT_PRESET, SMARTS_PRESET,
                   SimPointSampler, SimulationController, SmartsSampler,
                   dynamic_config)
from repro.workloads import SUITE_MACHINE_KWARGS, load_benchmark

workload = load_benchmark("gzip", size="tiny")


class ScheduleRecorder:
    """Wraps a controller to record the sequence of execution modes."""

    def __init__(self, controller):
        self.controller = controller
        self.schedule = []
        for mode in ("run_fast", "run_profile", "run_warming"):
            self._wrap(mode)
        original_timed = controller.run_timed

        def timed(instructions, measure=True):
            out = original_timed(instructions, measure)
            if out[0]:
                self.schedule.append(
                    ("T" if measure else "w", out[0]))
            return out

        controller.run_timed = timed

    def _wrap(self, name):
        original = getattr(self.controller, name)
        symbol = {"run_fast": "F", "run_profile": "P",
                  "run_warming": "w"}[name]

        def wrapped(instructions):
            executed = original(instructions)
            if executed:
                self.schedule.append((symbol, executed))
            return executed

        setattr(self.controller, name, wrapped)

    def render(self, scale=2000, limit=72):
        out = []
        for symbol, count in self.schedule:
            out.append(symbol * max(1, count // scale))
        text = "".join(out)
        return text[:limit] + ("..." if len(text) > limit else "")


def show(label, sampler):
    controller = SimulationController(
        workload, machine_kwargs=SUITE_MACHINE_KWARGS)
    recorder = ScheduleRecorder(controller)
    result = sampler.run(controller)
    print(f"{label:18s} {recorder.render()}")
    print(f"{'':18s} ipc={result.ipc:.3f} "
          f"timed={result.timed_fraction * 100:.1f}% "
          f"samples={result.timed_intervals}\n")


print("mode schedule legend: F=fast  P=profile(BBV)  w=warming  "
      "T=timed measurement\n")
show("SMARTS", SmartsSampler(SMARTS_PRESET))
show("SimPoint", SimPointSampler(SIMPOINT_PRESET))
show("DynamicSampling", DynamicSampler(dynamic_config("EXC", 100,
                                                      "1M", 10)))
print("SMARTS never runs fast (continuous warming); SimPoint profiles "
      "everything once,\nthen touches only its points; Dynamic Sampling "
      "runs fast except at detected phase\nchanges — the paper's "
      "Figure 3 in action.")
