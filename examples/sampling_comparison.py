"""Compare all four timing policies on one SPEC-like benchmark.

Reproduces one row of the paper's evaluation: full timing as the
reference, then SMARTS, SimPoint and Dynamic Sampling, reporting each
policy's accuracy error and speedup (modeled host time, using the
paper's per-mode throughputs).

Run:  python examples/sampling_comparison.py [benchmark] [size]
"""

import sys

from repro import (DynamicSampler, FullTiming, SIMPOINT_PRESET,
                   SMARTS_PRESET, SimPointSampler, SimulationController,
                   SmartsSampler, TimingConfig, accuracy_error,
                   dynamic_config, load_benchmark, speedup)
from repro.workloads import SUITE_MACHINE_KWARGS

benchmark = sys.argv[1] if len(sys.argv) > 1 else "perlbmk"
size = sys.argv[2] if len(sys.argv) > 2 else "small"
workload = load_benchmark(benchmark, size=size)
print(f"benchmark {benchmark} (size={size}, "
      f"~{workload.estimated_instructions} instructions)\n")


def fresh_controller():
    return SimulationController(workload,
                                timing_config=TimingConfig.small(),
                                machine_kwargs=SUITE_MACHINE_KWARGS)


print("running full timing (the reference)...")
full = FullTiming().run(fresh_controller())
print(f"  full timing IPC = {full.ipc:.4f} "
      f"({full.extra['cycles']} cycles)\n")

policies = [
    SmartsSampler(SMARTS_PRESET),
    SimPointSampler(SIMPOINT_PRESET),
    DynamicSampler(dynamic_config("CPU", 300, "1M", None)),
    DynamicSampler(dynamic_config("EXC", 300, "1M", 10)),
    DynamicSampler(dynamic_config("IO", 100, "1M", None)),
]

header = (f"{'policy':28s} {'IPC':>7s} {'error':>7s} "
          f"{'speedup':>8s} {'samples':>7s}")
print(header)
print("-" * len(header))
for sampler in policies:
    result = sampler.run(fresh_controller())
    error = accuracy_error(result.ipc, full.ipc)
    gain = speedup(full.modeled_seconds, result.modeled_seconds)
    print(f"{result.policy:28s} {result.ipc:7.4f} "
          f"{error * 100:6.2f}% {gain:7.1f}x "
          f"{result.timed_intervals:7d}")

print("\n(speedups are modeled host time; see repro.sampling.costmodel)")
