"""Visualise the paper's Figure 2/4: VM statistics track program phases.

Runs a benchmark under full timing while recording, per interval, the
IPC and the deltas of the three monitorable VM statistics, then shows
where SimPoint and Dynamic Sampling would place their samples.

Run:  python examples/phase_detection.py [benchmark]
"""

import sys

from repro.analysis import ascii_series
from repro.harness import (collect_interval_trace,
                           compare_phase_detection, phase_match_score)

benchmark = sys.argv[1] if len(sys.argv) > 1 else "perlbmk"

print(f"collecting full-timing interval trace for {benchmark} "
      f"(this runs the detailed model)...")
trace = collect_interval_trace(benchmark, max_intervals=300)

ipc_peak = max(trace.ipc) or 1.0
for variable in ("CPU", "EXC", "IO"):
    deltas = trace.stats[variable]
    peak = max(deltas) or 1
    scaled = [value / peak * ipc_peak for value in deltas]
    print()
    print(ascii_series(
        [("IPC", trace.ipc), (f"{variable} delta", scaled)],
        title=f"{benchmark}: IPC vs {variable} "
              f"(per {trace.interval_length}-instruction interval)"))

print("\ncomparing SimPoint's chosen points with Dynamic Sampling's "
      "detected phases (EXC-300-1M)...")
comparison = compare_phase_detection(benchmark, variable="EXC")
print(f"  intervals          : {comparison.num_intervals}")
print(f"  SimPoint points    : {comparison.simpoint_intervals[:20]}"
      f"{' ...' if len(comparison.simpoint_intervals) > 20 else ''}")
print(f"  DS-detected phases : {comparison.dynamic_intervals[:20]}"
      f"{' ...' if len(comparison.dynamic_intervals) > 20 else ''}")
print(f"  match score (+-10) : "
      f"{phase_match_score(comparison) * 100:.0f}%")
