"""Trace-driven vs execution-driven simulation (paper §1).

The paper's introduction explains why trace-driven simulation — record
the functional event stream once, replay it into many timing models —
is attractive for uniprocessor studies but unusable for full systems
(no timing feedback).  This example measures the attraction: one
recorded trace drives two different timing configurations, and the
replayed cycle counts match execution-driven simulation exactly.

Run:  python examples/trace_driven.py
"""

import tempfile
import time
from pathlib import Path

from repro import MODE_EVENT, OutOfOrderCore, TimingConfig
from repro.trace import record_trace, replay_trace
from repro.workloads import WorkloadBuilder

builder = WorkloadBuilder("trace-demo", seed=21)
builder.phase("crc", iters=20000)
builder.phase("stream", n=2048, iters=20)
builder.phase("pointer_chase", n=4096, steps=40000)
workload = builder.build()

with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "workload.ztrc"

    # ---- execution-driven reference -------------------------------
    live_core = OutOfOrderCore(TimingConfig.small())
    system = workload.boot()
    t0 = time.perf_counter()
    system.run_to_completion(mode=MODE_EVENT, sink=live_core)
    live_seconds = time.perf_counter() - t0
    print(f"execution-driven: {live_core.retired} instructions, "
          f"{live_core.cycles} cycles "
          f"(IPC {live_core.retired / live_core.cycles:.3f}) "
          f"in {live_seconds:.2f}s")

    # ---- record once ----------------------------------------------
    t0 = time.perf_counter()
    events = record_trace(workload, path)
    print(f"recorded {events} events to "
          f"{path.stat().st_size // 1024} KiB "
          f"in {time.perf_counter() - t0:.2f}s")

    # ---- replay into two different machines ------------------------
    for label, config in (("scaled hierarchy", TimingConfig.small()),
                          ("paper Table 1", TimingConfig.opteron_like())):
        core = OutOfOrderCore(config)
        t0 = time.perf_counter()
        replay_trace(path, core)
        print(f"replay [{label:16s}]: {core.cycles} cycles "
              f"(IPC {core.retired / core.cycles:.3f}) "
              f"in {time.perf_counter() - t0:.2f}s")

    check = OutOfOrderCore(TimingConfig.small())
    replay_trace(path, check)
    assert check.cycles == live_core.cycles
    print("\nreplay reproduces the execution-driven cycle count exactly "
          "— but a trace\ncan never see timing feedback, which is why "
          "the paper builds an\nexecution-driven framework instead.")
