"""Quickstart: assemble a guest program, run it, and time it by sampling.

Demonstrates the three layers of the framework:

1. the Z64 assembler and the functional VM (SimNow analogue),
2. the out-of-order timing core (PTLsim analogue),
3. Dynamic Sampling coupling the two (the paper's contribution).

Run:  python examples/quickstart.py
"""

from repro import (DynamicSampler, SimulationController, assemble, boot,
                   dynamic_config)
from repro.workloads import WorkloadBuilder

# ----------------------------------------------------------------------
# 1. A bare guest program on the functional VM

SOURCE = """
_start:
    la   t1, message
    li   t2, 14          ; length
    li   t0, 1           ; console channel
    li   t7, 1           ; SYS_WRITE
    ecall
    ; compute 10! in t3
    li   t3, 1
    li   t4, 10
factorial:
    mul  t3, t3, t4
    addi t4, t4, -1
    bne  t4, zero, factorial
    mv   t0, t3          ; exit code = 10! mod 2^64
    li   t7, 0           ; SYS_EXIT
    ecall
message:
    .ascii "hello, guest!\\n"
"""

system = boot(assemble(SOURCE))
executed = system.run_to_completion()
print("guest said:", system.output.strip())
print(f"guest executed {executed} instructions, "
      f"exit code {system.exit_code} (= 10! = {3628800})")
assert system.exit_code == 3628800

# ----------------------------------------------------------------------
# 2. A multi-phase workload built with the DSL

builder = WorkloadBuilder("quickstart-demo", seed=42)
builder.phase("stream", n=2048, iters=40)        # FP, cache friendly
builder.phase("pointer_chase", n=8192, steps=60000)  # memory bound
builder.phase("branchy", iters=50000)            # mispredict bound
builder.phase("console_io", nbytes=32)
workload = builder.build()
print(f"\nworkload '{workload.name}': {len(workload.phases)} phases, "
      f"~{workload.estimated_instructions} instructions")

# ----------------------------------------------------------------------
# 3. Timing via Dynamic Sampling (Algorithm 1)

controller = SimulationController(workload)
sampler = DynamicSampler(dynamic_config("EXC", 100, "1M", 10))
result = sampler.run(controller)

print(f"\nDynamic Sampling ({result.policy}):")
print(f"  estimated IPC       : {result.ipc:.3f}")
print(f"  timing measurements : {result.timed_intervals}")
print(f"  instructions timed  : {result.timed_instructions} "
      f"of {result.total_instructions} "
      f"({result.timed_fraction * 100:.1f}%)")
print(f"  modeled host time   : {result.modeled_seconds * 1e3:.1f} ms "
      f"(vs {result.total_instructions / 0.3e6 * 1e3:.1f} ms full timing)")
