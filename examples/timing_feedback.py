"""Timing feedback: the guest observes simulated time (paper §3.1).

The paper stresses that complete-system simulation needs *timing
feedback* — the functional execution must see the time the timing model
computes (active-wait loops, protocol timeouts).  The paper's
experiments disable it; this example demonstrates the mechanism our
controller implements: after each timed interval the estimated cycle
count is pushed into the guest-visible cycle counter (``rdcycle``) and
the timer device.

The guest below busy-waits until 50,000 virtual cycles have passed.
Without feedback the clock never advances and the guest would spin
forever; with feedback the wait terminates after a simulated amount of
work that depends on the measured IPC.

Run:  python examples/timing_feedback.py
"""

from repro import SimulationController, assemble
from repro.workloads import WorkloadBuilder

WAIT_LOOP = """
    ; busy-wait until rdcycle >= 150000 (an active wait loop)
    li t1, 150000
spin:
    rdcycle t0
    addi gp, gp, 1       ; count spin iterations (gp survives)
    bltu t0, t1, spin
"""

builder = WorkloadBuilder("feedback-demo", seed=1)
builder.phase("stream", n=256, iters=2)
builder.raw(WAIT_LOOP, estimate=120000, label="active-wait")
builder.phase("crc", iters=5000)
workload = builder.build()

controller = SimulationController(workload, feedback=True)
# Alternate timing and fast execution, as a sampling policy would.
timed_total = 0
while not controller.finished:
    executed, cycles = controller.run_timed(2000)
    timed_total += executed
    if controller.finished:
        break
    fast = controller.run_fast(2000)
    # the controller extends virtual time over fast-forwarded stretches
    controller.account_functional_time(fast, ipc=1.0)

state = controller.machine.state
print(f"guest finished after {state.icount} instructions")
print(f"virtual cycles seen by the guest : {state.cycles}")
print(f"spin iterations until the wait ended: {state.regs[13]}")
print(f"timer device virtual now         : "
      f"{controller.system.timer.now}")
assert state.cycles >= 150000, "feedback failed: clock never advanced"
print("\nactive wait terminated because simulated time advanced — the "
      "feedback loop the paper requires for full-system accuracy.")
