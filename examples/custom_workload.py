"""Build a custom multi-phase workload and evaluate sampling on it.

Shows the workload DSL: kernels, working-set reuse slots, code
replication and I/O markers — everything the synthetic SPEC suite is
made of — and then checks how well Dynamic Sampling tracks the phase
structure you created.

Run:  python examples/custom_workload.py
"""

from repro import (DynamicSampler, FullTiming, SimulationController,
                   accuracy_error, dynamic_config)
from repro.workloads import SUITE_MACHINE_KWARGS, WorkloadBuilder

# A database-ish workload: scan, index lookup, sort, commit to disk.
builder = WorkloadBuilder("toy-database", seed=123)
for round_index in range(4):
    builder.phase("string_scan", n=8192, iters=8,
                  reuse_key="table")          # table scan
    builder.phase("pointer_chase", n=4096, steps=30000,
                  reuse_key="index")          # index traversal
    builder.phase("sort", n=192, reps=3,
                  reuse_key="sortbuf")        # result ordering
    builder.phase("disk_io", nsect=4, reps=2,
                  lba=round_index * 16)       # commit
workload = builder.build()

print(f"workload '{workload.name}':")
for phase in workload.phases:
    print(f"  phase {phase.index:2d}: {phase.kernel:14s} "
          f"~{phase.estimated_instructions} instructions")

# The scaled VM knobs (bounded translation cache) matter: they are what
# makes the CPU statistic respond to phase changes at this scale.
print("\nrunning full timing (reference)...")
full = FullTiming().run(SimulationController(
    workload, machine_kwargs=SUITE_MACHINE_KWARGS))
print(f"  IPC = {full.ipc:.4f}")

print("\nrunning Dynamic Sampling on each statistic...")
for variable, sensitivity in (("CPU", 300), ("EXC", 300), ("IO", 100)):
    controller = SimulationController(
        workload, machine_kwargs=SUITE_MACHINE_KWARGS)
    # max_func bounds how long the sampler may coast between
    # measurements — the paper's safety net for missed phases
    sampler = DynamicSampler(
        dynamic_config(variable, sensitivity, "1M", 50))
    result = sampler.run(controller)
    error = accuracy_error(result.ipc, full.ipc)
    print(f"  {result.policy:26s} IPC={result.ipc:.4f} "
          f"error={error * 100:5.2f}%  samples={result.timed_intervals}"
          f"  timed={result.timed_fraction * 100:.1f}%")

system = workload.boot()
system.run_to_completion()
print(f"\nguest disk traffic: {system.disk.sectors_transferred} sectors")
